"""Bench PARAM — regenerate the Section 5.2 parameter study."""

from repro.experiments import param_study

from .conftest import emit


def test_slack(benchmark, env):
    result = benchmark.pedantic(
        param_study.run_slack,
        args=(env,),
        kwargs=dict(n_samples=60),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # All slack settings produce feasible, far-below-baseline costs.
    for row in result.rows:
        assert 0.0 < row[1] < 1.0
        assert row[2] <= 1.35  # normalised time stays near the deadline


def test_kappa(benchmark, env):
    result = benchmark.pedantic(
        param_study.run_kappa, args=(env,), rounds=1, iterations=1
    )
    emit(result)
    combos = result.data["combos"]
    costs = result.data["costs"]
    # The paper's overhead observation: the search space explodes with
    # kappa while the cost curve flattens (diminishing returns).
    assert combos[-1] > 100 * combos[0]
    assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))


def test_window(benchmark, env):
    result = benchmark.pedantic(
        param_study.run_window,
        args=(env,),
        kwargs=dict(n_starts=6),
        rounds=1,
        iterations=1,
    )
    emit(result)
    costs = result.data["costs"]
    # A mid-sized window is never worse than the extremes by a large
    # factor (the U-shape of the paper's T_m study).
    mid = costs[len(costs) // 2]
    assert mid <= max(costs) + 1e-9
