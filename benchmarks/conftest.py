"""Benchmark fixtures.

Every figure/table benchmark regenerates its paper artifact through the
experiment modules, printing the reproduced rows (run pytest with ``-s``
to see them) and asserting the qualitative shape.  pytest-benchmark
times the regeneration itself.
"""

from __future__ import annotations

import pytest

from repro.experiments.env import ExperimentEnv


@pytest.fixture(scope="session")
def env() -> ExperimentEnv:
    """The canonical paper environment, shared across benchmarks."""
    return ExperimentEnv.paper_default(seed=7)


@pytest.fixture(scope="session")
def bench_samples() -> int:
    """Monte-Carlo replays per evaluation point in benchmarks."""
    return 80


def emit(result) -> None:
    """Print a reproduced table beneath the benchmark output."""
    print()
    print(result.format_table())
