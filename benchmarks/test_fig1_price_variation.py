"""Bench FIG1 — regenerate the spot-price-variation summary (Figure 1)."""

from repro.experiments import fig1_price_variation

from .conftest import emit


def test_fig1(benchmark, env):
    result = benchmark.pedantic(
        fig1_price_variation.run, args=(env,), rounds=3, iterations=1
    )
    emit(result)
    spiky = result.data["m1.medium@us-east-1a"]
    calm = result.data["m1.medium@us-east-1b"]
    # Figure 1's two observations: temporal swings in the busy zone,
    # near-constant prices for the same type in the quiet zone.
    assert spiky.max_price > 3 * spiky.min_price
    assert calm.coefficient_of_variation < 0.2
    assert spiky.coefficient_of_variation > calm.coefficient_of_variation
