"""Ablation benches for the design choices DESIGN.md calls out.

* exhaustive vs greedy subset search — solution quality vs search cost,
* exact marginal-decomposition evaluator vs the paper's naive joint
  enumeration — same numbers, orders-of-magnitude different speed,
* logarithmic vs uniform bid candidates (covered in test_reduction).
"""

import numpy as np
import pytest

from repro.core.cost_model import GroupOutcome, evaluate, evaluate_enumerated
from repro.core.ondemand_select import select_ondemand_relaxed
from repro.core.optimizer import SompiOptimizer
from repro.core.two_level import TwoLevelOptimizer
from repro.core.subset import exhaustive_subset_search, greedy_subset_search
from repro.experiments.env import LOOSE_DEADLINE_FACTOR


@pytest.fixture(scope="module")
def bt_problem(request):
    env = request.getfixturevalue("env")
    problem = env.problem("BT", LOOSE_DEADLINE_FACTOR)
    return env, problem


class TestSubsetStrategy:
    def test_exhaustive(self, benchmark, env):
        problem = env.problem("BT", LOOSE_DEADLINE_FACTOR)
        models = env.failure_models(problem)

        def run():
            _, od = select_ondemand_relaxed(
                problem.ondemand_options, problem.deadline, env.config.slack
            )
            opt = TwoLevelOptimizer(problem, models, od, env.config)
            return exhaustive_subset_search(opt, env.config.kappa), opt

        (best, opt) = benchmark(run)
        assert best is not None
        print(
            f"\nexhaustive: cost ${best.expectation.cost:.2f}, "
            f"{opt.combos_evaluated} combos"
        )

    def test_greedy_matches_quality(self, benchmark, env):
        problem = env.problem("BT", LOOSE_DEADLINE_FACTOR)
        models = env.failure_models(problem)
        _, od = select_ondemand_relaxed(
            problem.ondemand_options, problem.deadline, env.config.slack
        )

        def run():
            opt = TwoLevelOptimizer(problem, models, od, env.config)
            return greedy_subset_search(opt, env.config.kappa), opt

        (greedy, gopt) = benchmark(run)
        exh_opt = TwoLevelOptimizer(problem, models, od, env.config)
        exhaustive = exhaustive_subset_search(exh_opt, env.config.kappa)
        assert greedy is not None
        # Greedy evaluates far fewer combos at near-equal quality.
        assert gopt.combos_evaluated < exh_opt.combos_evaluated
        assert greedy.expectation.cost <= exhaustive.expectation.cost * 1.15
        print(
            f"\ngreedy: ${greedy.expectation.cost:.2f} in "
            f"{gopt.combos_evaluated} combos vs exhaustive "
            f"${exhaustive.expectation.cost:.2f} in {exh_opt.combos_evaluated}"
        )


class TestEvaluatorAblation:
    @pytest.fixture(scope="class")
    def outcomes(self, env):
        problem = env.problem("BT", LOOSE_DEADLINE_FACTOR)
        models = env.failure_models(problem)
        plan = env.sompi_plan(problem)
        decision = plan.decision
        if len(decision.groups) < 2:
            # force a two-group instance so the joint space is non-trivial
            idx = [0, 3]
            outs = [
                GroupOutcome.build(
                    problem.groups[i],
                    problem.groups[i].itype.ondemand_price,
                    2.0,
                    models[problem.groups[i].key],
                )
                for i in idx
            ]
        else:
            outs = [
                GroupOutcome.build(
                    problem.groups[g.group_index],
                    g.bid,
                    g.interval,
                    models[problem.groups[g.group_index].key],
                )
                for g in decision.groups
            ]
        ondemand = problem.ondemand_options[plan.decision.ondemand_index]
        return outs, ondemand

    def test_fast_evaluator(self, benchmark, outcomes):
        outs, od = outcomes
        exp = benchmark(evaluate, outs, od)
        assert exp.cost > 0

    def test_naive_enumeration_same_result(self, benchmark, outcomes):
        outs, od = outcomes
        slow = benchmark(evaluate_enumerated, outs, od)
        fast = evaluate(outs, od)
        assert np.isclose(fast.cost, slow.cost)
        assert np.isclose(fast.time, slow.time)


class TestOptimizerEndToEnd:
    def test_full_plan(self, benchmark, env):
        problem = env.problem("BT", LOOSE_DEADLINE_FACTOR)
        models = env.failure_models(problem)

        def plan():
            return SompiOptimizer(problem, models, env.config).plan()

        result = benchmark(plan)
        assert result.expectation.time <= problem.deadline + 1e-9
