"""Bench FIG5 — regenerate the headline cost comparison (Figure 5).

The paper's central result: SOMPI cheapest everywhere, ~70% below
On-demand on average; Marathe-Opt beats Marathe only when the deadline
is loose; Marathe costs more than the baseline on the IO kernel.
"""

import numpy as np

from repro.experiments import fig5_cost_comparison

from .conftest import emit


def test_fig5(benchmark, env, bench_samples):
    result = benchmark.pedantic(
        fig5_cost_comparison.run,
        args=(env,),
        kwargs=dict(n_samples=bench_samples),
        rounds=1,
        iterations=1,
    )
    emit(result)
    cells = result.data["normalized"]

    # SOMPI wins every cell.
    for cell in cells.values():
        for other in ("On-demand", "Marathe", "Marathe-Opt"):
            assert cell["SOMPI"] <= cell[other] + 0.02

    # ~70% average saving vs On-demand (paper: 70%).
    avg = np.mean([c["SOMPI"] / c["On-demand"] for c in cells.values()])
    assert avg < 0.5

    # Marathe > Baseline on the IO-intensive kernel.
    assert cells["BTIO:loose"]["Marathe"] > 1.0

    # Marathe-Opt differentiates from Marathe only under loose deadlines
    # on the compute kernels.
    assert cells["BT:loose"]["Marathe-Opt"] < cells["BT:loose"]["Marathe"] - 0.05
    assert abs(cells["BT:tight"]["Marathe-Opt"] - cells["BT:tight"]["Marathe"]) < 0.15

    # LAMMPS: savings shrink as the process count (and the communication
    # fraction) grows, under the loose deadline.
    assert (
        cells["LAMMPS-p32:loose"]["SOMPI"] / cells["LAMMPS-p32:loose"]["On-demand"]
        <= cells["LAMMPS-p128:loose"]["SOMPI"]
        / cells["LAMMPS-p128:loose"]["On-demand"]
        + 0.15
    )
