"""Bench FIG4 — regenerate failure-rate / expected-price curves (Figure 4)."""

import numpy as np

from repro.experiments import fig4_failure_rate

from .conftest import emit


def test_fig4(benchmark, env):
    result = benchmark.pedantic(
        fig4_failure_rate.run, args=(env,), rounds=3, iterations=1
    )
    emit(result)
    for curve in result.data["curves"].values():
        # S(P) rises with the bid; f falls to ~0 at the historical max.
        assert np.all(np.diff(curve["price"]) >= -1e-9)
        assert curve["fail"][-1] < 0.05
        assert curve["fail"][0] > curve["fail"][-1]
