"""Bench TAB2 — regenerate the normalised execution times (Table 2)."""

from repro.experiments import table2_exec_time

from .conftest import emit


def test_table2(benchmark, env, bench_samples):
    result = benchmark.pedantic(
        table2_exec_time.run,
        args=(env,),
        kwargs=dict(n_samples=bench_samples),
        rounds=1,
        iterations=1,
    )
    emit(result)
    data = result.data["normalized_time"]
    for method in ("Marathe-Opt", "SOMPI"):
        # Loose: well within 1.5x Baseline Time (paper rows 1.04-1.40).
        assert all(t <= 1.55 for t in data[f"loose:{method}"])
        # Tight: at or near the 1.05x deadline (paper rows ~1.04-1.05).
        assert all(t <= 1.35 for t in data[f"tight:{method}"])
