"""Benches for the extension studies (beyond the paper's evaluation)."""

from repro.experiments import ext_correlation, ext_semantics

from .conftest import emit


def test_ext_semantics(benchmark, env, bench_samples):
    result = benchmark.pedantic(
        ext_semantics.run,
        args=(env,),
        kwargs=dict(n_samples=bench_samples),
        rounds=1,
        iterations=1,
    )
    emit(result)
    rows = result.data["rows"]
    for name in ("BT", "FT"):
        for dl in ("loose", "tight"):
            single = rows[f"{name}:{dl}:single-shot"]
            persistent = rows[f"{name}:{dl}:persistent"]
            # Persistent requests never pay more than abandoning to
            # on-demand at the first reclaim...
            assert persistent["cost"] <= single["cost"] + 0.05
            # ...but cannot be faster than giving up and buying capacity.
            assert persistent["time"] >= single["time"] - 0.05


def test_ext_correlation(benchmark, env, bench_samples):
    result = benchmark.pedantic(
        ext_correlation.run,
        args=(env,),
        kwargs=dict(n_samples=bench_samples),
        rounds=1,
        iterations=1,
    )
    emit(result)
    rows = result.data["rows"]
    rhos = sorted(rows)
    # Full correlation wrecks the single-group plan but the type-diverse
    # replicated plan keeps completing on spot.
    assert rows[rhos[-1]]["single"] > rows[rhos[0]]["single"]
    assert rows[rhos[-1]]["replicated_done"] >= 0.9
    assert rows[rhos[-1]]["replicated"] < rows[rhos[-1]]["single"]