"""Bench FIG8 — regenerate the fault-tolerance ablations (Figure 8)."""

from repro.experiments import fig8_fault_tolerance

from .conftest import emit


def test_fig8(benchmark, env, bench_samples):
    result = benchmark.pedantic(
        fig8_fault_tolerance.run,
        args=(env,),
        kwargs=dict(n_samples=bench_samples, n_adaptive_starts=8),
        rounds=1,
        iterations=1,
    )
    emit(result)
    raw = result.data["normalized"]
    # Combining mechanisms beats no fault tolerance and replication-only
    # by a wide margin under the loose deadline.
    assert raw["loose:SOMPI"] < raw["loose:All-Unable"] * 0.9
    assert raw["loose:SOMPI"] < raw["loose:w/o-CK"] * 0.95
    # Replication alone buys almost nothing over no fault tolerance.
    assert abs(raw["loose:w/o-CK"] - raw["loose:All-Unable"]) < 0.1
    # All variants produce positive, sane costs.
    assert all(0 < v < 2.0 for v in raw.values())
