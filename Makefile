PYTHON ?= python
export PYTHONPATH := src

.PHONY: test audit bench bench-full experiments quick

test:
	$(PYTHON) -m pytest -x -q

## Tier-1 tests with repro.obs audit mode on: every replay/adaptive
## result must reconcile against its cost ledger or the suite fails.
audit:
	REPRO_AUDIT=1 $(PYTHON) -m pytest -x -q

## Perf suite in quick mode; refuses to overwrite BENCH_*.json on a
## >20% regression of the primary metric (pass FORCE=1 to override).
bench:
	$(PYTHON) -m benchmarks.perf --quick $(if $(FORCE),--force,)

bench-full:
	$(PYTHON) -m benchmarks.perf $(if $(FORCE),--force,)

experiments:
	$(PYTHON) -m repro.experiments.runner

quick:
	$(PYTHON) -m repro.experiments.runner --quick
