PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-fix audit bench bench-full experiments quick clean-pyc

test:
	$(PYTHON) -m pytest -x -q

## reprolint static invariants (DESIGN.md §9): fails on any new
## (non-baselined) finding; reprolint_baseline.json grandfathers the
## documented exact float comparisons and nothing else.  Warm reruns
## replay from the content-hash cache; reprolint.sarif feeds CI's
## inline PR annotations.
lint:
	$(PYTHON) -m repro.analysis src benchmarks --baseline reprolint_baseline.json \
		--cache --sarif reprolint.sarif

## Apply mechanically-safe autofixes (suffix renames, zero guards,
## sorted() wraps) and scaffold TODO-marked inline suppressions for
## whatever remains — every TODO must be justified before review.
lint-fix:
	$(PYTHON) -m repro.analysis src benchmarks --baseline reprolint_baseline.json \
		--fix --fix-suppress

## Tier-1 tests with repro.obs audit mode on: every replay/adaptive
## result must reconcile against its cost ledger or the suite fails.
audit:
	REPRO_AUDIT=1 $(PYTHON) -m pytest -x -q

## Perf suite in quick mode; refuses to overwrite BENCH_*.json on a
## >20% regression of the primary metric (pass FORCE=1 to override).
bench:
	$(PYTHON) -m benchmarks.perf --quick $(if $(FORCE),--force,)

bench-full:
	$(PYTHON) -m benchmarks.perf $(if $(FORCE),--force,)

## Remove byte-compiled caches.  A stale __pycache__ can shadow edited
## modules (and silently defeat the engine-fingerprint invalidation of
## the artifact store); none may ever be tracked — CI asserts that.
clean-pyc:
	find . -name __pycache__ -prune -exec rm -rf {} +
	find . -name '*.py[co]' -delete

experiments:
	$(PYTHON) -m repro.experiments.runner

quick:
	$(PYTHON) -m repro.experiments.runner --quick
