#!/usr/bin/env python
"""Quickstart: plan a cost-optimal hybrid execution for one MPI job.

Builds the canonical environment (synthetic 2014-style spot markets,
NPB workload models), asks SOMPI for a plan for the BT kernel under a
loose deadline, and then *lives through it* by replaying the plan
against the actual price traces.

Run:  python examples/quickstart.py
"""

from repro.baselines import ondemand_decision
from repro.experiments.env import ExperimentEnv, LOOSE_DEADLINE_FACTOR


def main() -> None:
    env = ExperimentEnv.paper_default(seed=7)
    app = env.app("BT")

    baseline_time = env.baseline_time(app)
    baseline_cost = env.baseline_cost(app)
    print(f"workload: {app.profile().name} on {app.n_processes} processes")
    print(
        f"baseline (fastest on-demand): {baseline_time:.1f} h, "
        f"${baseline_cost:.2f}"
    )

    problem = env.problem(app, LOOSE_DEADLINE_FACTOR)
    print(f"deadline: {problem.deadline:.1f} h "
          f"({LOOSE_DEADLINE_FACTOR:.2f} x baseline)\n")

    plan = env.sompi_plan(problem)
    print("SOMPI plan:")
    print(plan.describe())
    print()

    mc = env.mc(problem, plan.decision, n_samples=300, stream="quickstart")
    od = env.mc(problem, ondemand_decision(problem), n_samples=50, stream="qs-od")
    print(
        f"Monte-Carlo over {mc.n_samples} trace replays:\n"
        f"  SOMPI     ${mc.mean_cost:7.2f} +- {mc.std_cost:.2f}   "
        f"{mc.mean_time:5.1f} h   deadline misses {mc.deadline_miss_rate:.1%}\n"
        f"  On-demand ${od.mean_cost:7.2f} +- {od.std_cost:.2f}   "
        f"{od.mean_time:5.1f} h"
    )
    print(
        f"\nSOMPI saves {1 - mc.mean_cost / od.mean_cost:.0%} vs the "
        "on-demand baseline while meeting the deadline in expectation."
    )


if __name__ == "__main__":
    main()
