#!/usr/bin/env python
"""Bring your own MPI application.

Defines a 2D Jacobi stencil solver as an :class:`MPIApplication`,
*executes* a scaled-down instance of it on the discrete-event MPI
runtime to validate the communication structure and collect the TAU
profile counters, and then plans its cost-optimal cloud execution.

Run:  python examples/custom_application.py
"""

from repro.apps.base import MPIApplication, WorkloadCategory
from repro.cloud.instance_types import PAPER_TYPES, get_instance_type
from repro.experiments.env import ExperimentEnv
from repro.mpi.profile import ApplicationProfile, CollectiveCounts
from repro.mpi.runtime import MPIRuntime
from repro.mpi.timing import estimate_execution_hours


class Jacobi2D(MPIApplication):
    """Row-partitioned 2D Jacobi iteration with halo rows + residual check."""

    name = "JACOBI2D"
    category = WorkloadCategory.COMPUTE

    GRID = {"S": 512, "W": 1024, "A": 4096, "B": 16384, "C": 32768}
    ITERATIONS = 4000
    FLOPS_PER_POINT = 6.0
    BYTES_PER_POINT = 8.0

    def single_run_profile(self) -> ApplicationProfile:
        n = self.GRID[self.problem_class]
        p = self.n_processes
        points = float(n) * n
        halo_bytes_per_iter = 2 * n * self.BYTES_PER_POINT * p  # two rows each
        return ApplicationProfile(
            name=f"{self.name}.{self.problem_class}",
            n_processes=p,
            instr_giga=self.FLOPS_PER_POINT * points * self.ITERATIONS / 1e9,
            p2p_bytes=halo_bytes_per_iter * self.ITERATIONS,
            p2p_messages=float(2 * p * self.ITERATIONS),
            collectives={
                "allreduce": CollectiveCounts(8.0 * self.ITERATIONS, float(self.ITERATIONS))
            },
            memory_gb_per_process=points * self.BYTES_PER_POINT * 2 / p / 1024**3,
        )

    def rank_program(self, mpi, iterations=3, scale=1e-6):
        n = self.GRID[self.problem_class]
        points_per_rank = n * n * scale / mpi.size
        halo = 2 * n * self.BYTES_PER_POINT * scale
        residual = 1.0
        for _ in range(iterations):
            yield from mpi.compute(self.FLOPS_PER_POINT * points_per_rank / 1e9)
            up, down = (mpi.rank - 1) % mpi.size, (mpi.rank + 1) % mpi.size
            if mpi.size > 1:
                yield from mpi.send(up, halo)
                yield from mpi.send(down, halo)
                yield from mpi.recv(up)
                yield from mpi.recv(down)
            residual = yield from mpi.allreduce(residual * 0.5, nbytes=8.0)
        return residual


def main() -> None:
    app = Jacobi2D(problem_class="B", n_processes=128, repeats=100)

    # 1. Validate the structure on the simulated MPI runtime (8 ranks,
    #    tiny problem) and show the recorded profile.
    runtime = MPIRuntime(
        get_instance_type("c3.xlarge"),
        8,
        lambda mpi: app.rank_program(mpi, iterations=5, scale=1e-5),
        name="jacobi-smoke",
    )
    stats = runtime.run()
    print(
        f"smoke run on 8 simulated ranks: {stats.wall_seconds:.3f} s wall, "
        f"residual {stats.rank_results[0]:.4f}"
    )
    print(
        f"recorded: {stats.profile.p2p_messages:.0f} messages, "
        f"{stats.profile.p2p_bytes / 1e6:.1f} MB halo traffic, "
        f"{stats.profile.collectives['allreduce'].count:.0f} allreduces"
    )

    # 2. Estimate the full workload on each instance type.
    profile = app.profile()
    print(f"\nestimated hours for {profile.name}:")
    for tname in PAPER_TYPES:
        hours = estimate_execution_hours(profile, get_instance_type(tname))
        print(f"  {tname:>12}: {hours:6.1f} h")

    # 3. Plan the cloud execution.
    env = ExperimentEnv.paper_default(seed=7)
    problem = env.problem(app, deadline_factor=1.5)
    plan = env.sompi_plan(problem)
    print(f"\nSOMPI plan (deadline {problem.deadline:.1f} h):")
    print(plan.describe())
    mc = env.mc(problem, plan.decision, n_samples=200, stream="jacobi")
    print(
        f"\nreplayed: ${mc.mean_cost:.2f} +- {mc.std_cost:.2f} vs "
        f"${env.baseline_cost(app):.2f} baseline "
        f"({1 - mc.mean_cost / env.baseline_cost(app):.0%} saved)"
    )


if __name__ == "__main__":
    main()
