#!/usr/bin/env python
"""Deadline/cost trade-off: how much does urgency cost? (Figure 7 style).

Sweeps the deadline for a compute-intensive and a communication-
intensive kernel and prints the descending cost staircase with the spot
instance types the optimizer walks through.

Run:  python examples/deadline_tradeoff.py [APP ...]
"""

import sys

from repro.experiments.env import ExperimentEnv


def staircase(env: ExperimentEnv, app_name: str) -> None:
    app = env.app(app_name)
    baseline_cost = env.baseline_cost(app)
    baseline_time = env.baseline_time(app)
    print(f"\n{app_name}: baseline {baseline_time:.1f} h / ${baseline_cost:.2f}")
    print(f"{'deadline':>10}  {'exp. cost':>10}  {'saving':>7}  bar / spot types")
    for factor in (1.05, 1.2, 1.5, 2.0, 2.5, 3.0, 3.5):
        problem = env.problem(app, factor)
        plan = env.sompi_plan(problem)
        norm = plan.expectation.cost / baseline_cost
        types = sorted(
            {problem.groups[g.group_index].itype.name for g in plan.decision.groups}
        )
        bar = "#" * max(1, round(40 * norm))
        print(
            f"{factor:9.2f}x  ${plan.expectation.cost:9.2f}  "
            f"{1 - norm:6.0%}  {bar} {'+'.join(types) or '(on-demand)'}"
        )


def main() -> None:
    apps = sys.argv[1:] or ["BT", "FT"]
    env = ExperimentEnv.paper_default(seed=7)
    for name in apps:
        staircase(env, name)
    print(
        "\nCompute kernels walk down to cheaper fleets as the deadline "
        "loosens; communication kernels stay on cc2.8xlarge, whose 10 GbE "
        "makes it both fastest and cheapest."
    )


if __name__ == "__main__":
    main()
