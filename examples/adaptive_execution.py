#!/usr/bin/env python
"""Adaptive execution through a market regime change (Algorithm 1).

The spot market's price distribution shifts mid-run: the previously
cheap m1-family markets become expensive.  The adaptive executor
re-learns its failure models every window and migrates; the w/o-MT
ablation keeps its stale plan and pays for it.

Run:  python examples/adaptive_execution.py
"""

import numpy as np

from repro.execution.adaptive import AdaptiveExecutor
from repro.experiments.env import ExperimentEnv
from repro.experiments.fig8_fault_tolerance import drifting_history


def narrate(label: str, result) -> None:
    print(f"\n{label}: cost ${result.cost:.2f}, makespan {result.makespan:.1f} h, "
          f"{'met' if result.met_deadline else 'MISSED'} deadline")
    for w in result.windows:
        print(
            f"  window {w.index}: [{w.t0:7.1f}, {w.t1:7.1f}) h  "
            f"progress {w.fraction_before:5.1%} -> {w.fraction_after:5.1%}  "
            f"${w.cost:6.2f}  on {', '.join(w.used_groups)}"
        )
    if result.fallback_used:
        print("  (finished on the on-demand fallback)")


def main() -> None:
    env = ExperimentEnv.paper_default(seed=7)
    problem = env.problem("BT", deadline_factor=2.5)

    rng = np.random.default_rng(42)
    start = float(rng.uniform(env.train_end, env.train_end + 48.0))

    # Find the markets a pre-shift plan picks, then turn exactly those
    # hostile two hours into the run.
    from repro.core.optimizer import SompiOptimizer, build_failure_models
    from repro.market.history import SpotPriceHistory

    windowed = SpotPriceHistory()
    for key, trace in env.history.items():
        windowed.add(key, trace.slice(start - env.config.window_hours, start))
    plan0 = SompiOptimizer(
        problem, build_failure_models(problem, windowed), env.config
    ).plan()
    keys0 = {problem.groups[g.group_index].key for g in plan0.decision.groups}
    drift = drifting_history(env, drift_at=start + 2.0, inflate_keys=keys0)
    print(
        f"BT, deadline {problem.deadline:.1f} h, starting at t={start:.1f} h — "
        f"at t={start + 2:.1f} h the market(s) {sorted(map(str, keys0))} "
        "turn hostile"
    )

    adaptive = AdaptiveExecutor(
        problem, drift, env.config, training_hours=env.config.window_hours
    ).run(start)
    narrate("SOMPI (adaptive, refreshing models)", adaptive)

    frozen = AdaptiveExecutor(
        problem,
        drift,
        env.config,
        training_hours=env.config.window_hours,
        refresh_models=False,
    ).run(start)
    narrate("w/o-MT (frozen models and decision)", frozen)

    delta = frozen.cost / adaptive.cost - 1 if adaptive.cost > 0 else float("nan")
    print(f"\nupdate maintenance is worth {delta:+.0%} on this run")


if __name__ == "__main__":
    main()
