"""Persistent spot-request semantics tests."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.errors import ConfigurationError
from repro.execution.replay import replay_decision
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


def setup(trace, exec_time=6.0, overhead=0.5, recovery=0.5, deadline=40.0):
    g = make_group(
        exec_time=exec_time, overhead=overhead, recovery=recovery, n_instances=2
    )
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=deadline)
    h = SpotPriceHistory()
    h.add(g.key, trace)
    return problem, h


class TestPersistent:
    def test_unknown_semantics_rejected(self, flat_trace):
        problem, h = setup(flat_trace)
        d = Decision(groups=(GroupDecision(0, 0.2, 2.0),), ondemand_index=0)
        with pytest.raises(ConfigurationError):
            replay_decision(problem, d, h, 0.0, semantics="eventual")

    def test_failure_free_matches_single_shot(self, flat_trace):
        problem, h = setup(flat_trace)
        d = Decision(groups=(GroupDecision(0, 0.2, 2.0),), ondemand_index=0)
        a = replay_decision(problem, d, h, 0.0, semantics="single-shot")
        b = replay_decision(problem, d, h, 0.0, semantics="persistent")
        assert a.cost == pytest.approx(b.cost)
        assert a.makespan == pytest.approx(b.makespan)

    def test_relaunch_resumes_from_checkpoint(self):
        # cheap [0,3), expensive [3,5), cheap [5,...): one interruption.
        trace = SpotPriceTrace([0.0, 3.0, 5.0], [0.05, 0.9, 0.05], 400.0)
        problem, h = setup(trace)
        d = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, semantics="persistent")
        # First attempt: dies at 3.0 with ckpt at 2 (saved 2h).
        # Relaunch at 5.0: recovery 0.5, remaining 4h with ckpt at 2,
        # wall = 0.5 + 4 + 0.5(1 ckpt) = 5.0 -> completes at 10.0.
        assert result.completed_by == "m1.small@us-east-1a"
        assert result.makespan == pytest.approx(10.0)
        rec = result.group_records[0]
        assert rec.completed
        # paid 3h + 5h of cheap price on 2 instances
        assert result.cost == pytest.approx(0.05 * 8.0 * 2)

    def test_restart_from_scratch_without_checkpoint(self):
        # dies at 1.0 before any checkpoint; relaunches at 2.0 from zero.
        trace = SpotPriceTrace([0.0, 1.0, 2.0], [0.05, 0.9, 0.05], 400.0)
        problem, h = setup(trace)
        d = Decision(groups=(GroupDecision(0, 0.10, 6.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, semantics="persistent")
        # no recovery overhead (nothing saved): completes at 2 + 6 = 8
        assert result.makespan == pytest.approx(8.0)

    def test_repeated_interruptions_all_paid(self):
        # alternating 2h cheap / 1h expensive; F=1.5 checkpoints save 1.5h
        times, prices = [], []
        for k in range(40):
            times += [3.0 * k, 3.0 * k + 2.0]
            prices += [0.05, 0.9]
        trace = SpotPriceTrace(times, prices, 130.0)
        problem, h = setup(trace, exec_time=6.0, overhead=0.25, recovery=0.25)
        d = Decision(groups=(GroupDecision(0, 0.10, 1.5),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, semantics="persistent")
        assert result.completed_by == "m1.small@us-east-1a"
        rec = result.group_records[0]
        assert rec.n_checkpoints >= 2
        assert result.makespan > 6.0  # interruptions cost wall time

    def test_persistent_never_reaches_ondemand_if_price_returns(self):
        trace = SpotPriceTrace([0.0, 3.0, 5.0], [0.05, 0.9, 0.05], 400.0)
        problem, h = setup(trace)
        d = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        single = replay_decision(problem, d, h, 0.0, semantics="single-shot")
        persistent = replay_decision(problem, d, h, 0.0, semantics="persistent")
        assert single.completed_by == "ondemand"
        assert persistent.completed_by != "ondemand"
        # cheaper in dollars, slower in wall time
        assert persistent.cost < single.cost
        assert persistent.makespan > single.makespan - 1e-9

    def test_dies_during_recovery_overhead(self):
        # relaunch window [5, 5.3) shorter than the 0.5h recovery
        trace = SpotPriceTrace(
            [0.0, 3.0, 5.0, 5.3, 8.0], [0.05, 0.9, 0.05, 0.9, 0.05], 400.0
        )
        problem, h = setup(trace)
        d = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, semantics="persistent")
        # second attempt makes no progress, third finishes
        assert result.completed_by == "m1.small@us-east-1a"
        # saved stays at 2h through the aborted recovery
        assert result.makespan == pytest.approx(8.0 + 0.5 + 4.0 + 0.5)

    def test_never_launchable_falls_back(self):
        trace = SpotPriceTrace([0.0], [0.9], 400.0)
        problem, h = setup(trace)
        d = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, semantics="persistent")
        assert result.completed_by == "ondemand"
        assert result.ondemand_hours == pytest.approx(5.0)


class TestEnvIntegration:
    def test_mc_accepts_semantics(self, small_env):
        problem = small_env.problem("BT", 1.5)
        plan = small_env.sompi_plan(problem)
        mc = small_env.mc(
            problem, plan.decision, 40, "sem-test", semantics="persistent"
        )
        assert mc.mean_cost > 0
