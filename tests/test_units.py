"""Unit-helper tests."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    BYTES_PER_GB,
    SECONDS_PER_HOUR,
    check_fraction,
    check_nonnegative,
    check_positive,
    days_to_hours,
    gb,
    hours,
    mb,
    seconds,
)


class TestConversions:
    def test_hours_seconds_roundtrip(self):
        assert seconds(hours(7200.0)) == pytest.approx(7200.0)

    def test_one_hour(self):
        assert hours(SECONDS_PER_HOUR) == 1.0

    def test_days(self):
        assert days_to_hours(2.5) == 60.0

    def test_gb(self):
        assert gb(BYTES_PER_GB) == 1.0

    def test_mb(self):
        assert mb(1024.0**2 * 3) == 3.0


class TestValidators:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)

    def test_check_nonnegative_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, math.nan, -math.inf])
    def test_check_nonnegative_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_nonnegative("x", bad)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_check_fraction_accepts(self, ok):
        assert check_fraction("x", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan])
    def test_check_fraction_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_fraction("x", bad)

    def test_validators_cast_to_float(self):
        assert isinstance(check_positive("x", 3), float)
