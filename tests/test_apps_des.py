"""Run every app's rank program on the discrete-event MPI runtime.

These tests verify that the *structural* models (who communicates what)
actually execute: correct results, matching profile shape, no deadlock.
"""

import pytest

from repro.apps import BT, BTIO, FT, IS, LU, SP, LAMMPS
from repro.cloud.instance_types import get_instance_type
from repro.mpi.runtime import MPIRuntime

C3 = get_instance_type("c3.xlarge")


def run_app(app, n=4, iterations=3, scale=1e-7):
    runtime = MPIRuntime(
        C3,
        n,
        lambda mpi: app.rank_program(mpi, iterations=iterations, scale=scale),
        name=app.name,
    )
    return runtime.run()


@pytest.mark.parametrize("cls", [BT, SP, LU, FT, IS, BTIO, LAMMPS])
def test_rank_program_completes(cls):
    app = cls(n_processes=4)
    stats = run_app(app)
    assert stats.wall_seconds > 0
    assert len(stats.rank_results) == 4


@pytest.mark.parametrize("cls", [BT, SP, LU])
def test_structured_grid_residual_agrees_across_ranks(cls):
    app = cls(n_processes=4)
    stats = run_app(app)
    # the allreduced residual is identical everywhere
    assert len(set(stats.rank_results)) == 1


def test_ft_profile_structure_matches_analytic_model():
    app = FT(n_processes=4)
    stats = run_app(app)
    colls = stats.profile.collectives
    assert "alltoall" in colls and "allreduce" in colls
    assert stats.profile.p2p_bytes == 0  # FT is collective-only


def test_bt_profile_structure_matches_analytic_model():
    app = BT(n_processes=4)
    stats = run_app(app)
    assert stats.profile.p2p_bytes > 0
    assert "allreduce" in stats.profile.collectives


def test_btio_actually_does_io():
    app = BTIO(n_processes=4)
    stats = run_app(app, iterations=5)
    assert stats.profile.io_seq_bytes > 0


def test_lammps_energy_is_allreduced():
    app = LAMMPS(n_processes=4)
    stats = run_app(app)
    assert len(set(stats.rank_results)) == 1


def test_single_process_degenerate_case():
    app = BT(n_processes=1)
    stats = run_app(app, n=1)
    assert stats.wall_seconds >= 0


def test_larger_cluster_runs():
    app = FT(n_processes=8)
    stats = run_app(app, n=8)
    assert stats.profile.collectives["alltoall"].count == 3
