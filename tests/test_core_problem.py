"""Problem/Decision definition tests."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.problem import (
    CircleGroupSpec,
    Decision,
    GroupDecision,
    OnDemandOption,
    Problem,
)
from repro.errors import ConfigurationError
from repro.market.history import MarketKey
from tests.conftest import make_group


class TestCircleGroupSpec:
    def test_for_processes_derives_fleet_size(self):
        spec = CircleGroupSpec.for_processes(
            MarketKey("cc2.8xlarge", "us-east-1a"),
            get_instance_type("cc2.8xlarge"),
            128,
            exec_time=5.0,
            checkpoint_overhead=0.1,
            recovery_overhead=0.1,
        )
        assert spec.n_instances == 4

    def test_key_type_must_match(self):
        with pytest.raises(ConfigurationError):
            CircleGroupSpec(
                key=MarketKey("m1.small", "us-east-1a"),
                itype=get_instance_type("m1.medium"),
                n_instances=1,
                exec_time=1.0,
                checkpoint_overhead=0.0,
                recovery_overhead=0.0,
            )

    def test_rejects_nonpositive_exec_time(self):
        with pytest.raises(ConfigurationError):
            make_group(exec_time=0.0)


class TestOnDemandOption:
    def test_rates(self):
        opt = OnDemandOption(get_instance_type("c3.xlarge"), 32, 2.0)
        assert opt.fleet_rate == pytest.approx(0.210 * 32)
        assert opt.full_run_cost == pytest.approx(2.0 * 0.210 * 32)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnDemandOption(get_instance_type("c3.xlarge"), 0, 2.0)


class TestProblem:
    def test_requires_groups_and_options(self, simple_problem):
        with pytest.raises(ConfigurationError):
            Problem((), simple_problem.ondemand_options, 10.0)
        with pytest.raises(ConfigurationError):
            Problem(simple_problem.groups, (), 10.0)

    def test_rejects_duplicate_markets(self, simple_problem):
        g = simple_problem.groups[0]
        with pytest.raises(ConfigurationError):
            Problem((g, g), simple_problem.ondemand_options, 10.0)

    def test_n_groups(self, simple_problem):
        assert simple_problem.n_groups == 2


class TestDecision:
    def test_duplicate_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            Decision(
                groups=(GroupDecision(0, 0.1, 1.0), GroupDecision(0, 0.2, 1.0)),
                ondemand_index=0,
            )

    def test_group_indices(self):
        d = Decision(
            groups=(GroupDecision(1, 0.1, 1.0), GroupDecision(0, 0.2, 2.0)),
            ondemand_index=0,
        )
        assert d.group_indices == (1, 0)

    def test_describe_mentions_markets(self, simple_problem):
        d = Decision(groups=(GroupDecision(0, 0.05, 2.0),), ondemand_index=1)
        text = d.describe(simple_problem)
        assert "m1.small@us-east-1a" in text
        assert "cc2.8xlarge" in text

    def test_empty_decision_is_valid(self):
        d = Decision(groups=(), ondemand_index=0)
        assert d.group_indices == ()

    def test_negative_bid_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupDecision(0, -0.1, 1.0)

    def test_zero_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupDecision(0, 0.1, 0.0)
