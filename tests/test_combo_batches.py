"""Streaming `_combo_batches` coverage: the batched enumeration must be
the full product space, in product order, and batched subset
optimisation must pick the same winner as the single-batch path."""

import itertools

import numpy as np
import pytest

import repro.core.two_level as two_level
from repro.cloud.instance_types import get_instance_type
from repro.config import SompiConfig
from repro.core.problem import OnDemandOption, Problem
from repro.core.ondemand_select import select_ondemand
from repro.core.two_level import TwoLevelOptimizer, _combo_batches, clear_shared_caches
from repro.market.failure import FailureModel
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


def alternating_trace(cheap=0.05, dear=0.8, period=6.0, hours=240.0):
    times, prices = [], []
    k = 0
    while k * period < hours:
        times += [k * period, k * period + period / 2]
        prices += [cheap, dear]
        k += 1
    return SpotPriceTrace(times, prices, hours + period)


class TestComboBatchEnumeration:
    @pytest.mark.parametrize("sizes,max_batch", [
        ([3, 4, 2], 5),      # streaming, ragged final batch
        ([5, 5], 7),         # streaming, 2-d
        ([2, 2, 2, 2], 16),  # exactly one batch
        ([6], 4),            # 1-d streaming
    ])
    def test_union_is_full_product_space(self, sizes, max_batch):
        batches = list(_combo_batches(sizes, max_batch))
        for b in batches:
            assert b.shape[1] == len(sizes)
            assert len(b) <= max_batch
        stacked = np.concatenate(batches, axis=0)
        expected = np.array(list(itertools.product(*[range(s) for s in sizes])))
        # Same rows, same (row-major) order, nothing missing or repeated.
        assert stacked.shape == expected.shape
        assert np.array_equal(stacked, expected)

    def test_streaming_matches_single_batch(self):
        sizes = [4, 3, 3]
        one = np.concatenate(list(_combo_batches(sizes, 10_000)))
        many = np.concatenate(list(_combo_batches(sizes, 7)))
        assert np.array_equal(one, many)


@pytest.fixture
def setup():
    g1 = make_group(zone="us-east-1a", exec_time=8.0, overhead=0.1, recovery=0.1)
    g2 = make_group(zone="us-east-1b", exec_time=8.0, overhead=0.1, recovery=0.1)
    g3 = make_group(zone="us-east-1c", exec_time=8.0, overhead=0.1, recovery=0.1)
    problem = Problem(
        groups=(g1, g2, g3),
        ondemand_options=(OnDemandOption(get_instance_type("c3.xlarge"), 8, 7.0),),
        deadline=14.0,
    )
    models = {
        g1.key: FailureModel(alternating_trace()),
        g2.key: FailureModel(SpotPriceTrace([0.0], [0.04], 300.0)),
        g3.key: FailureModel(alternating_trace(cheap=0.03, dear=1.2, period=9.0)),
    }
    _, od = select_ondemand(problem.ondemand_options, problem.deadline, 0.2)
    cfg = SompiConfig(kappa=3, bid_levels=5)
    return problem, models, od, cfg


class TestBatchedOptimizationEquivalence:
    def test_streaming_path_picks_same_winner(self, setup, monkeypatch):
        """Force `total > _MAX_BATCH` so optimize_subset streams, and
        compare against the single-batch evaluation of the same subset."""
        problem, models, od, cfg = setup
        clear_shared_caches()
        single = TwoLevelOptimizer(problem, models, od, cfg).optimize_subset(
            (0, 1, 2)
        )
        # (bid_levels + 1)^3 = 216 combos; a cap of 50 forces 5 batches.
        monkeypatch.setattr(two_level, "_MAX_BATCH", 50)
        clear_shared_caches()
        streamed = TwoLevelOptimizer(problem, models, od, cfg).optimize_subset(
            (0, 1, 2)
        )
        clear_shared_caches()
        assert single is not None and streamed is not None
        assert streamed.bids == single.bids
        assert streamed.intervals == single.intervals
        assert streamed.expectation == single.expectation
        assert streamed.combos_evaluated == single.combos_evaluated
