"""ExperimentEnv and cross-module integration tests."""

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.errors import ConfigurationError
from repro.experiments.env import (
    ExperimentEnv,
    LOOSE_DEADLINE_FACTOR,
    TIGHT_DEADLINE_FACTOR,
)
from repro.experiments.fig8_fault_tolerance import drifting_history, risky_env


class TestEnvConstruction:
    def test_paper_default_markets(self, paper_env):
        assert len(paper_env.history) == 12
        assert paper_env.train_end == 14 * 24.0

    def test_train_days_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentEnv.paper_default(history_days=7.0, train_days=7.0)

    def test_training_history_is_prefix(self, paper_env):
        training = paper_env.training_history()
        for key, trace in training.items():
            assert trace.end_time == paper_env.train_end
            full = paper_env.history.get(key)
            assert trace.start_time == full.start_time

    def test_reproducible_given_seed(self):
        a = ExperimentEnv.paper_default(seed=5, history_days=16, train_days=7)
        b = ExperimentEnv.paper_default(seed=5, history_days=16, train_days=7)
        for key, trace in a.history.items():
            assert b.history.get(key) == trace


class TestProblemConstruction:
    def test_groups_cover_types_times_zones(self, paper_env):
        problem = paper_env.problem("BT")
        assert problem.n_groups == 12
        assert len(problem.ondemand_options) == 4

    def test_deadline_relative_to_baseline(self, paper_env):
        app = paper_env.app("BT")
        problem = paper_env.problem(app, TIGHT_DEADLINE_FACTOR)
        assert problem.deadline == pytest.approx(
            TIGHT_DEADLINE_FACTOR * paper_env.baseline_time(app)
        )

    def test_deadline_override(self, paper_env):
        problem = paper_env.problem("BT", deadline_hours=99.0)
        assert problem.deadline == 99.0

    def test_group_parameters_consistent(self, paper_env):
        problem = paper_env.problem("FT")
        for g in problem.groups:
            assert g.itype.name == g.key.instance_type
            assert g.checkpoint_overhead > 0
            assert g.recovery_overhead > g.checkpoint_overhead
            # one process per core
            assert g.n_instances * g.itype.vcpus >= 128

    def test_baseline_is_min_over_types(self, paper_env):
        app = paper_env.app("IS")
        times = [paper_env.exec_time(app, t) for t in paper_env.instance_types]
        assert paper_env.baseline_time(app) == pytest.approx(min(times))


class TestModelCaching:
    def test_failure_models_cached(self, paper_env):
        problem = paper_env.problem("BT")
        a = paper_env.failure_models(problem)
        b = paper_env.failure_models(problem)
        assert a is b

    def test_expectation_matches_plan(self, paper_env):
        problem = paper_env.problem("BT", LOOSE_DEADLINE_FACTOR)
        plan = paper_env.sompi_plan(problem)
        exp = paper_env.expectation(problem, plan.decision)
        assert exp.cost == pytest.approx(plan.expectation.cost, rel=1e-9)

    def test_expectation_of_empty_decision(self, paper_env):
        from repro.baselines import ondemand_decision

        problem = paper_env.problem("BT")
        exp = paper_env.expectation(problem, ondemand_decision(problem))
        od = problem.ondemand_options
        assert exp.cost == pytest.approx(
            min(o.full_run_cost for o in od if o.exec_time <= problem.deadline)
        )


class TestFig8Environments:
    def test_risky_env_markets_fail_regularly(self, paper_env):
        risky = risky_env(paper_env)
        from repro.market.failure import FailureModel

        # in every market, a low bid dies within two days with high prob
        for key, trace in risky.history.items():
            fm = FailureModel(trace.slice(0.0, risky.train_end))
            low_bid = fm.min_price() * 1.5
            pmf = fm.failure_pmf(low_bid, 48)
            assert pmf[:-1].sum() > 0.3

    def test_drifting_history_boundary(self, paper_env):
        drift_at = paper_env.train_end + 10.0
        drift = drifting_history(paper_env, drift_at=drift_at)
        for key, trace in paper_env.history.items():
            drifted = drift.get(key)
            # identical before the boundary
            assert drifted.slice(0.0, drift_at) == trace.slice(0.0, drift_at)
            assert drifted.end_time == pytest.approx(trace.end_time)

    def test_drift_inflates_requested_keys(self, paper_env):
        from repro.market.history import MarketKey

        key = MarketKey("cc2.8xlarge", "us-east-1b")
        drift_at = paper_env.train_end
        drift = drifting_history(
            paper_env, drift_at=drift_at, inflate_keys={key}, inflation=3.0
        )
        before = paper_env.history.get(key).slice(drift_at, drift_at + 100.0)
        after = drift.get(key).slice(drift_at, drift_at + 100.0)
        assert after.mean_price() > 1.5 * before.mean_price()


class TestEndToEndScenarios:
    def test_full_pipeline_is_deterministic(self, small_env):
        problem = small_env.problem("FT", LOOSE_DEADLINE_FACTOR)
        p1 = small_env.sompi_plan(problem)
        p2 = small_env.sompi_plan(problem)
        assert p1.decision == p2.decision
        mc1 = small_env.mc(problem, p1.decision, 30, "det")
        mc2 = small_env.mc(problem, p2.decision, 30, "det")
        assert mc1 == mc2

    def test_storage_cost_negligible(self, paper_env):
        """The paper's S3 claim: checkpoint storage < 0.1% of the bill."""
        from repro.cloud.s3 import S3Store
        from repro.mpi.timing import estimate_checkpoint

        app = paper_env.app("BT")
        profile = app.profile()
        itype = get_instance_type("m1.medium")
        ckpt = estimate_checkpoint(profile, itype, paper_env.storage)
        store = S3Store()
        # keep one image live for the whole 18h run
        store.put("ckpt", ckpt.image_bytes, now=0.0)
        storage_cost = store.storage_cost(now=18.25)
        spot_bill = 18.25 * itype.ondemand_price * 128 * 0.10  # ~spot rate
        # ~0.2% of the (very cheap) spot bill, ~0.02% of the baseline
        # on-demand bill the paper normalises against.
        assert storage_cost / spot_bill < 0.002
        assert storage_cost / paper_env.baseline_cost(app) < 0.001

    def test_tight_deadline_prefers_faster_types(self, paper_env):
        tight = paper_env.sompi_plan(paper_env.problem("BT", TIGHT_DEADLINE_FACTOR))
        loose = paper_env.sompi_plan(paper_env.problem("BT", 3.5))
        tight_speed = max(
            paper_env.problem("BT").groups[g.group_index].itype.total_speed
            for g in tight.decision.groups
        )
        loose_speed = max(
            paper_env.problem("BT").groups[g.group_index].itype.total_speed
            for g in loose.decision.groups
        )
        assert tight_speed >= loose_speed

    def test_seed_sweep_keeps_headline_result(self):
        """SOMPI beats on-demand across seeds, not just seed 7."""
        from repro.baselines import ondemand_decision

        for seed in (1, 2):
            env = ExperimentEnv.paper_default(
                seed=seed, history_days=21, train_days=10
            )
            problem = env.problem("BT", LOOSE_DEADLINE_FACTOR)
            plan = env.sompi_plan(problem)
            mc = env.mc(problem, plan.decision, 60, f"seed{seed}")
            od = env.expectation(problem, ondemand_decision(problem))
            assert mc.mean_cost < od.cost
