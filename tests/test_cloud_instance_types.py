"""Instance catalog tests."""

import pytest

from repro.cloud.instance_types import (
    CATALOG,
    PAPER_TYPES,
    InstanceType,
    get_instance_type,
    instances_needed,
)
from repro.errors import ConfigurationError


class TestCatalog:
    def test_paper_types_present(self):
        for name in PAPER_TYPES:
            assert name in CATALOG

    def test_lookup_unknown_raises_with_hint(self):
        with pytest.raises(ConfigurationError, match="m1.small"):
            get_instance_type("m1.smalll")

    def test_cc2_is_32_core_10gbe(self):
        cc2 = get_instance_type("cc2.8xlarge")
        assert cc2.vcpus == 32
        assert cc2.network_gbps == 10.0

    def test_price_ordering(self):
        # Bigger machines cost more on demand.
        prices = [get_instance_type(t).ondemand_price for t in PAPER_TYPES]
        assert prices == sorted(prices)

    def test_total_speed(self):
        c3 = get_instance_type("c3.xlarge")
        assert c3.total_speed == pytest.approx(c3.vcpus * c3.core_speed)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InstanceType("bad", 0, 1.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            InstanceType("bad", 1, -1.0, 1.0, 1.0, 1.0, 1.0)


class TestInstancesNeeded:
    def test_one_process_per_core(self):
        assert instances_needed(get_instance_type("m1.small"), 128) == 128
        assert instances_needed(get_instance_type("cc2.8xlarge"), 128) == 4
        assert instances_needed(get_instance_type("c3.xlarge"), 128) == 32

    def test_rounds_up(self):
        assert instances_needed(get_instance_type("cc2.8xlarge"), 33) == 2

    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            instances_needed(get_instance_type("m1.small"), 0)
