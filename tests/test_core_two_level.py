"""Two-level optimizer and subset search tests."""

import itertools

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.config import SompiConfig
from repro.core.cost_model import GroupOutcome, evaluate
from repro.core.ondemand_select import select_ondemand
from repro.core.problem import OnDemandOption, Problem
from repro.core.subset import (
    enumerate_subsets,
    exhaustive_subset_search,
    greedy_subset_search,
)
from repro.core.two_level import TwoLevelOptimizer, _combo_batches
from repro.errors import ConfigurationError
from repro.market.failure import FailureModel
from repro.market.history import MarketKey
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


def alternating_trace(cheap=0.05, dear=0.8, period=6.0, hours=240.0):
    times, prices = [], []
    k = 0
    while k * period < hours:
        times += [k * period, k * period + period / 2]
        prices += [cheap, dear]
        k += 1
    return SpotPriceTrace(times, prices, hours + period)


@pytest.fixture
def setup():
    g1 = make_group(zone="us-east-1a", exec_time=8.0, overhead=0.1, recovery=0.1)
    g2 = make_group(zone="us-east-1b", exec_time=8.0, overhead=0.1, recovery=0.1)
    problem = Problem(
        groups=(g1, g2),
        ondemand_options=(OnDemandOption(get_instance_type("c3.xlarge"), 8, 7.0),),
        deadline=14.0,
    )
    models = {
        g1.key: FailureModel(alternating_trace()),
        g2.key: FailureModel(SpotPriceTrace([0.0], [0.04], 300.0)),
    }
    _, od = select_ondemand(problem.ondemand_options, problem.deadline, 0.2)
    cfg = SompiConfig(kappa=2, bid_levels=5)
    return problem, models, od, cfg


class TestOptimizeSubset:
    def test_result_is_exact_feasible(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        res = opt.optimize_subset((0, 1))
        assert res is not None
        assert res.expectation.time <= problem.deadline + 1e-9

    def test_result_matches_direct_evaluation(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        res = opt.optimize_subset((0, 1))
        outcomes = [
            GroupOutcome.build(
                problem.groups[i], bid, interval, models[problem.groups[i].key], 1.0
            )
            for i, bid, interval in zip(res.group_indices, res.bids, res.intervals)
        ]
        direct = evaluate(outcomes, od)
        assert direct.cost == pytest.approx(res.expectation.cost, rel=1e-9)

    def test_beats_brute_force_over_candidate_grid(self, setup):
        """The vectorised search must find the best candidate combo."""
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        res = opt.optimize_subset((0, 1))
        t0, t1 = opt.group_table(0), opt.group_table(1)
        best = np.inf
        for b0, b1 in itertools.product(range(t0.n_bids), range(t1.n_bids)):
            exp = evaluate([t0.outcomes[b0], t1.outcomes[b1]], od)
            if exp.meets_deadline(problem.deadline):
                best = min(best, exp.cost)
        assert res.expectation.cost == pytest.approx(best, rel=0.02)

    def test_duplicate_subset_rejected(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        with pytest.raises(ConfigurationError):
            opt.optimize_subset((0, 0))

    def test_empty_subset_rejected(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        with pytest.raises(ConfigurationError):
            opt.optimize_subset(())

    def test_missing_model_rejected(self, setup):
        problem, models, od, cfg = setup
        with pytest.raises(ConfigurationError):
            TwoLevelOptimizer(problem, {}, od, cfg)

    def test_infeasible_deadline_returns_none(self, setup):
        problem, models, od, cfg = setup
        tight = Problem(problem.groups, problem.ondemand_options, deadline=0.5)
        opt = TwoLevelOptimizer(tight, models, od, cfg)
        assert opt.optimize_subset((0,)) is None

    def test_combos_counted(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        opt.optimize_subset((0, 1))
        t0, t1 = opt.group_table(0), opt.group_table(1)
        assert opt.combos_evaluated == t0.n_bids * t1.n_bids


class TestSubsetEnumeration:
    def test_sizes_up_to_kappa(self):
        subsets = list(enumerate_subsets(4, 2))
        assert (0,) in subsets and (2, 3) in subsets
        assert len(subsets) == 4 + 6

    def test_exact_size(self):
        subsets = list(enumerate_subsets(4, 2, exact_size=True))
        assert all(len(s) == 2 for s in subsets)
        assert len(subsets) == 6

    def test_kappa_clamped(self):
        assert list(enumerate_subsets(2, 5, exact_size=True)) == [(0, 1)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_subsets(0, 1))


class TestSearchStrategies:
    def test_exhaustive_finds_best(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        best = exhaustive_subset_search(opt, kappa=2)
        assert best is not None
        for subset in enumerate_subsets(2, 2):
            res = opt.optimize_subset(subset)
            if res is not None:
                assert best.expectation.cost <= res.expectation.cost + 1e-9

    def test_greedy_close_to_exhaustive(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        exh = exhaustive_subset_search(opt, kappa=2)
        greedy = greedy_subset_search(opt, kappa=2)
        assert greedy is not None
        assert greedy.expectation.cost <= exh.expectation.cost * 1.25

    def test_to_decision_roundtrip(self, setup):
        problem, models, od, cfg = setup
        opt = TwoLevelOptimizer(problem, models, od, cfg)
        res = opt.optimize_subset((1,))
        d = res.to_decision(0)
        assert d.group_indices == (1,)
        assert d.groups[0].bid == res.bids[0]


class TestComboBatches:
    def test_covers_product_space(self):
        batches = list(_combo_batches([3, 4], max_batch=5))
        all_rows = {tuple(r) for b in batches for r in b}
        assert all_rows == set(itertools.product(range(3), range(4)))

    def test_single_batch_fast_path(self):
        (batch,) = list(_combo_batches([2, 2], max_batch=100))
        assert batch.shape == (4, 2)
