"""Checkpoint-storage accounting tests (the paper's <0.1% claim)."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.execution.replay import (
    checkpoint_storage_cost,
    checkpoint_write_times,
    replay_decision,
)
from repro.execution.results import GroupRunRecord
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from repro.units import BYTES_PER_GB
from tests.conftest import make_group


def setup(image_gb=45.0):
    g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
    g = type(g)(
        key=g.key,
        itype=g.itype,
        n_instances=g.n_instances,
        exec_time=g.exec_time,
        checkpoint_overhead=g.checkpoint_overhead,
        recovery_overhead=g.recovery_overhead,
        image_bytes=image_gb * BYTES_PER_GB,
    )
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=30.0)
    h = SpotPriceHistory()
    h.add(g.key, SpotPriceTrace([0.0], [0.05], 400.0))
    return problem, h


class TestAccounting:
    def test_disabled_by_default(self):
        problem, h = setup()
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0)
        assert result.ledger.total("storage") == 0.0

    def test_enabled_adds_ledger_line(self):
        problem, h = setup()
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, account_storage=True)
        storage = result.ledger.total("storage")
        assert storage > 0.0
        baseline = replay_decision(problem, d, h, 0.0)
        assert result.cost == pytest.approx(baseline.cost + storage)

    def test_hand_computed_gb_hours(self):
        problem, h = setup(image_gb=73.0)
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, account_storage=True)
        # F=2, O=0.5: checkpoints at wall 2.5 and 5.0; run ends at 7.0.
        # image 1 lives [2.5, 5.0), image 2 lives [5.0, 7.0).
        gb_hours = 73.0 * (2.5 + 2.0)
        expected = gb_hours * 0.03 / 730.0
        assert result.ledger.total("storage") == pytest.approx(expected)

    def test_zero_image_bytes_skipped(self):
        problem, h = setup(image_gb=0.0)
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, account_storage=True)
        assert result.ledger.total("storage") == 0.0

    def test_no_checkpoints_no_storage(self):
        problem, h = setup()
        d = Decision(groups=(GroupDecision(0, 0.1, 6.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0, account_storage=True)
        assert result.ledger.total("storage") == 0.0

    def test_helper_direct(self):
        problem, h = setup()
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0)
        cost = checkpoint_storage_cost(
            problem, d, result.group_records, run_end=result.makespan
        )
        assert cost > 0


def _record(launch=0.0, n_ckpt=1, interval=10.0):
    return GroupRunRecord(
        key=make_group().key, bid=0.1, interval=interval, launched=True,
        launch_time=launch, end_time=20.0, terminated=False, completed=True,
        productive=6.0, saved=6.0, n_checkpoints=n_ckpt, spot_cost=0.0,
    )


class TestCheckpointTimeline:
    """The replay checkpoints every ``min(interval, work) + O`` hours;
    the storage timeline must use that cycle, not the raw interval."""

    def test_cycle_capped_at_remaining_work(self):
        spec = make_group(exec_time=6.0, overhead=0.5)
        # interval 10 > work 6: the replay would checkpoint at 6.5, and
        # the drifted raw-interval timeline said 10.5.
        assert checkpoint_write_times(spec, 10.0, _record()) == [6.5]

    def test_fraction_done_shortens_the_cycle(self):
        spec = make_group(exec_time=6.0, overhead=0.5)
        # Half the work is banked: remaining work 3 caps the cycle at 3.5.
        times = checkpoint_write_times(
            spec, 4.0, _record(launch=2.0, n_ckpt=2), fraction_done=0.5
        )
        assert times == pytest.approx([5.5, 9.0])

    def test_interval_below_work_unchanged(self):
        spec = make_group(exec_time=6.0, overhead=0.5)
        times = checkpoint_write_times(spec, 2.0, _record(n_ckpt=2, interval=2.0))
        assert times == pytest.approx([2.5, 5.0])

    def test_never_launched_or_zero_checkpoints_empty(self):
        spec = make_group(exec_time=6.0, overhead=0.5)
        assert checkpoint_write_times(spec, 2.0, _record(n_ckpt=0)) == []

    def test_storage_cost_uses_capped_cycle(self):
        problem, _ = setup(image_gb=45.0)
        d = Decision(groups=(GroupDecision(0, 0.1, 10.0),), ondemand_index=0)
        cost = checkpoint_storage_cost(
            problem, d, [_record()], run_end=8.0
        )
        # One image written at 6.5 (not 10.5), alive until 8.0.
        assert cost == pytest.approx(45.0 * 1.5 * 0.03 / 730.0)


class TestPaperClaim:
    def test_storage_below_tenth_percent_of_bill(self, paper_env):
        """End to end: storage cost < 0.1% of the baseline bill (paper)."""
        problem = paper_env.problem("BT", 1.5)
        plan = paper_env.sompi_plan(problem)
        if not plan.decision.groups:
            pytest.skip("plan used no spot groups")
        result = replay_decision(
            problem,
            plan.decision,
            paper_env.history,
            paper_env.train_end + 5.0,
            account_storage=True,
        )
        baseline = paper_env.baseline_cost(paper_env.app("BT"))
        assert result.ledger.total("storage") / baseline < 0.001
