"""Non-blocking point-to-point tests (isend/irecv/sendrecv)."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.mpi.runtime import MPIRuntime

C3 = get_instance_type("c3.xlarge")
SMALL = get_instance_type("m1.small")


def run(program, n=2, itype=C3):
    return MPIRuntime(itype, n, program).run()


def test_isend_does_not_block_sender():
    log = {}

    def program(mpi):
        if mpi.rank == 0:
            req = mpi.isend(1, 200e6)  # 200 MB: a long transfer
            log["sender_free_at"] = mpi.now
            yield from mpi.compute(0.0)
            yield from req.wait()
            log["send_done_at"] = mpi.now
        else:
            got = yield from mpi.recv(0)
            log["recv_done_at"] = mpi.now

    run(program, itype=SMALL)
    assert log["sender_free_at"] == 0.0  # continued immediately
    assert log["send_done_at"] > 1.0  # but the wire time was real
    assert log["recv_done_at"] == pytest.approx(log["send_done_at"])


def test_irecv_completes_with_payload():
    def program(mpi):
        if mpi.rank == 0:
            req = mpi.irecv(1)
            value = yield from req.wait()
            return value
        yield from mpi.compute(1.0)
        yield from mpi.send(0, 64, payload="late-hello")
        return None

    stats = run(program)
    assert stats.rank_results[0] == "late-hello"


def test_request_test_probe():
    def program(mpi):
        if mpi.rank == 0:
            req = mpi.irecv(1)
            before = req.test()
            value = yield from req.wait()
            after = req.test()
            return (before, value, after)
        yield from mpi.compute(1.0)
        yield from mpi.send(0, 8, payload=5)
        return None

    stats = run(program)
    assert stats.rank_results[0] == (False, 5, True)


def test_sendrecv_ring_does_not_deadlock():
    """Every rank exchanges with both neighbours simultaneously — the
    classic pattern that deadlocks with naive blocking sends."""

    def program(mpi):
        nxt = (mpi.rank + 1) % mpi.size
        prv = (mpi.rank - 1) % mpi.size
        got = yield from mpi.sendrecv(nxt, 1024, prv, payload=mpi.rank)
        return got

    stats = run(program, n=8)
    assert stats.rank_results == tuple((r - 1) % 8 for r in range(8))


def test_overlap_compute_with_communication():
    """The point of isend: overlapping a big transfer with local work
    should take max(compute, transfer), not their sum."""

    def overlapped(mpi):
        if mpi.rank == 0:
            req = mpi.isend(1, 100e6)
            yield from mpi.compute(3.5 * 2.0)  # ~2 s on m1.small-like core
            yield from req.wait()
        else:
            yield from mpi.recv(0)

    def serial(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, 100e6)
            yield from mpi.compute(3.5 * 2.0)
        else:
            yield from mpi.recv(0)

    t_overlap = run(overlapped, itype=C3).wall_seconds
    t_serial = run(serial, itype=C3).wall_seconds
    assert t_overlap < t_serial


def test_invalid_peers_rejected():
    from repro.errors import MPIRuntimeError

    def program(mpi):
        mpi.isend(99, 8)
        yield from mpi.compute(0.0)

    with pytest.raises(MPIRuntimeError):
        run(program)
