"""Monte-Carlo evaluation and adaptive-executor tests."""

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.errors import TraceError
from repro.execution.adaptive import AdaptiveExecutor
from repro.execution.montecarlo import (
    evaluate_decision_mc,
    replay_many,
    sample_start_times,
)
from repro.market.history import MarketKey, SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


@pytest.fixture
def flat_problem():
    g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=12.0)
    h = SpotPriceHistory()
    h.add(g.key, SpotPriceTrace([0.0], [0.05], 600.0))
    return problem, h


class TestSampling:
    def test_starts_respect_horizon_and_tmin(self, flat_problem):
        problem, h = flat_problem
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        rng = np.random.default_rng(0)
        starts = sample_start_times(problem, d, h, 50, rng, t_min=100.0)
        assert np.all(starts >= 100.0)
        assert np.all(starts <= 600.0 - 26.0)

    def test_too_short_history_raises(self, flat_problem):
        problem, h = flat_problem
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        with pytest.raises(TraceError):
            sample_start_times(problem, d, h, 10, np.random.default_rng(0), t_min=599.0)

    def test_pure_ondemand_needs_no_trace(self, flat_problem):
        problem, _ = flat_problem
        d = Decision(groups=(), ondemand_index=0)
        starts = sample_start_times(
            problem, d, SpotPriceHistory(), 5, np.random.default_rng(0)
        )
        assert np.all(starts == 0.0)


class TestEvaluation:
    def test_deterministic_market_gives_zero_variance(self, flat_problem):
        problem, h = flat_problem
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        summary = evaluate_decision_mc(problem, d, h, 50, np.random.default_rng(1))
        assert summary.std_cost == pytest.approx(0.0, abs=1e-9)
        assert summary.mean_cost == pytest.approx(0.05 * 7.0 * 2)
        assert summary.deadline_miss_rate == 0.0
        assert summary.spot_completion_rate == 1.0

    def test_reproducible_given_rng(self, flat_problem):
        problem, h = flat_problem
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        a = evaluate_decision_mc(problem, d, h, 20, np.random.default_rng(5))
        b = evaluate_decision_mc(problem, d, h, 20, np.random.default_rng(5))
        assert a == b

    def test_replay_many_returns_raw_results(self, flat_problem):
        problem, h = flat_problem
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        results = replay_many(problem, d, h, 7, np.random.default_rng(2))
        assert len(results) == 7
        assert all(r.completed for r in results)

    def test_mc_close_to_cost_model_on_spiky_market(self):
        """Section 5.4.1: model expectation vs Monte-Carlo replay."""
        from repro.core.cost_model import GroupOutcome, evaluate
        from repro.market.failure import FailureModel

        g = make_group(exec_time=6.0, overhead=0.25, recovery=0.25, n_instances=2)
        od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
        problem = Problem(groups=(g,), ondemand_options=(od,), deadline=30.0)
        # alternating 9h cheap / 3h expensive
        times, prices = [], []
        for k in range(100):
            times += [12.0 * k, 12.0 * k + 9.0]
            prices += [0.05, 0.90]
        h = SpotPriceHistory()
        h.add(g.key, SpotPriceTrace(times, prices, 1212.0))
        bid, interval = 0.10, 2.0
        fm = FailureModel(h.get(g.key))
        outcome = GroupOutcome.build(g, bid, interval, fm, 1.0)
        model = evaluate([outcome], od)
        d = Decision(groups=(GroupDecision(0, bid, interval),), ondemand_index=0)
        mc = evaluate_decision_mc(problem, d, h, 3000, np.random.default_rng(3))
        # The paper reports <=15% relative difference; allow 25% slack here.
        assert mc.mean_cost == pytest.approx(model.cost, rel=0.25)


class TestAdaptive:
    def test_completes_within_deadline_on_calm_market(self, small_env):
        problem = small_env.problem("BT", 1.5)
        ex = AdaptiveExecutor(problem, small_env.history, small_env.config)
        res = ex.run(start_time=small_env.train_end + 10.0)
        assert res.completed
        assert res.makespan <= problem.deadline * 1.1

    def test_cost_not_absurd(self, small_env):
        app = small_env.app("BT")
        problem = small_env.problem(app, 1.5)
        ex = AdaptiveExecutor(problem, small_env.history, small_env.config)
        res = ex.run(start_time=small_env.train_end + 10.0)
        assert res.cost <= small_env.baseline_cost(app) * 1.5

    def test_frozen_models_variant_runs(self, small_env):
        problem = small_env.problem("BT", 1.5)
        ex = AdaptiveExecutor(
            problem, small_env.history, small_env.config, refresh_models=False
        )
        res = ex.run(start_time=small_env.train_end + 10.0)
        assert res.completed

    def test_impossible_deadline_falls_back_fast(self, small_env):
        problem = small_env.problem("BT", deadline_hours=1.0)
        ex = AdaptiveExecutor(problem, small_env.history, small_env.config)
        res = ex.run(start_time=small_env.train_end + 10.0)
        assert res.completed  # finishes, just misses the deadline
        assert res.fallback_used
        assert not res.met_deadline

    def test_window_records_are_consistent(self, small_env):
        problem = small_env.problem("BT", 2.0)
        ex = AdaptiveExecutor(problem, small_env.history, small_env.config)
        res = ex.run(start_time=small_env.train_end + 10.0)
        for w in res.windows:
            assert w.t1 > w.t0
            assert 0.0 <= w.fraction_before <= w.fraction_after <= 1.0
