"""Artifact-store lifecycle tests (DESIGN.md §10).

Cold write → warm load bit-identity, content-hash invalidation,
engine-fingerprint invalidation, corruption fail-open, and the config
gating of the disk tier — at the store level and through the full
planning pipeline.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.cloud.instance_types import get_instance_type
from repro.config import SompiConfig
from repro.core.optimizer import SompiOptimizer
from repro.core.problem import OnDemandOption, Problem
from repro.core.two_level import clear_shared_caches
from repro.execution import artifacts, kernels
from repro.execution.artifacts import ArtifactStore, get_store
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


def alternating_trace(cheap=0.05, dear=0.8, period=6.0, hours=240.0):
    times, prices = [], []
    k = 0
    while k * period < hours:
        times += [k * period, k * period + period / 2]
        prices += [cheap, dear]
        k += 1
    return SpotPriceTrace(times, prices, hours + period)


def _problem_and_history(flat_price=0.04):
    g1 = make_group(zone="us-east-1a", exec_time=8.0, overhead=0.1, recovery=0.1)
    g2 = make_group(zone="us-east-1b", exec_time=8.0, overhead=0.1, recovery=0.1)
    problem = Problem(
        groups=(g1, g2),
        ondemand_options=(
            OnDemandOption(get_instance_type("c3.xlarge"), 8, 7.0),
        ),
        deadline=14.0,
    )
    history = SpotPriceHistory()
    history.add(g1.key, alternating_trace())
    history.add(g2.key, SpotPriceTrace([0.0], [flat_price], 300.0))
    return problem, history


def _plan(history, tmp_root, problem=None, **overrides):
    if problem is None:
        problem, _ = _problem_and_history()
    cfg = SompiConfig(
        kappa=2,
        bid_levels=5,
        artifact_dir=str(tmp_root),
        **overrides,
    )
    return SompiOptimizer.from_history(problem, history, cfg).plan()


def _assert_same_plan(a, b):
    assert a.decision == b.decision
    assert a.expectation.cost == b.expectation.cost  # exact, not approx
    assert a.expectation.time == b.expectation.time


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_shared_caches()
    kernels.clear_table_cache()
    yield
    clear_shared_caches()
    kernels.clear_table_cache()


class TestStoreUnit:
    def test_roundtrip_is_bit_identical(self, tmp_path):
        store = ArtifactStore(tmp_path)
        rng = np.random.default_rng(0)
        arrays = {
            "f": rng.standard_normal(257),
            "i": np.arange(19, dtype=np.int64),
            "b": rng.standard_normal(31) > 0.0,
        }
        assert store.save("k", "ab" + "0" * 62, arrays)
        loaded = store.load("k", "ab" + "0" * 62)
        assert set(loaded) == set(arrays)
        for name, arr in arrays.items():
            assert loaded[name].dtype == arr.dtype
            assert loaded[name].tobytes() == arr.tobytes()

    def test_missing_artifact_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        before = obs.get_metrics().get("cache.artifact_misses.k")
        assert store.load("k", "ff" + "0" * 62) is None
        assert obs.get_metrics().get("cache.artifact_misses.k") == before + 1

    def test_corrupt_artifact_fails_open_and_is_unlinked(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "cd" + "0" * 62
        store.save("k", key, {"x": np.arange(4.0)})
        path = store.path_for("k", key)
        path.write_bytes(b"this is not an npz file")
        before = obs.get_metrics().get("cache.artifact_errors.k")
        assert store.load("k", key) is None
        assert obs.get_metrics().get("cache.artifact_errors.k") == before + 1
        assert not path.exists()  # bad file dropped so a rebuild repairs it

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("k", "ee" + "0" * 62, {"x": np.arange(3.0)})
        assert not list(tmp_path.rglob("*.tmp"))


class TestStoreGating:
    def test_disabled_without_either_cache_flag(self, tmp_path):
        base = dict(artifact_dir=str(tmp_path))
        assert get_store(SompiConfig(table_cache=False, **base)) is None
        assert get_store(SompiConfig(artifact_cache=False, **base)) is None
        assert get_store(SompiConfig(**base)) is not None

    def test_empty_env_override_disables_default_dir(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, "")
        assert get_store(SompiConfig()) is None


class TestPlannerLifecycle:
    def test_cold_write_then_warm_load_is_bit_identical(self, tmp_path):
        problem, history = _problem_and_history()
        metrics = obs.get_metrics()
        cold = _plan(history, tmp_path, problem)
        assert metrics.get("cache.artifact_writes.group_tables") >= 1
        # Simulate a fresh process: memory caches emptied, disk intact.
        clear_shared_caches()
        hits = metrics.get("cache.artifact_hits.group_tables")
        warm = _plan(history, tmp_path, problem)
        assert metrics.get("cache.artifact_hits.group_tables") > hits
        _assert_same_plan(cold, warm)

    def test_content_hash_invalidates(self, tmp_path):
        problem, history_a = _problem_and_history(flat_price=0.04)
        _plan(history_a, tmp_path, problem)
        clear_shared_caches()
        # Different trace content must key differently: no table hits.
        _, history_b = _problem_and_history(flat_price=0.06)
        metrics = obs.get_metrics()
        hits = metrics.get("cache.artifact_hits.group_tables")
        from_store = _plan(history_b, tmp_path, problem)
        assert metrics.get("cache.artifact_hits.group_tables") == hits
        # And the stale artifacts never leak into the new plan.
        clear_shared_caches()
        fresh = _plan(history_b, tmp_path / "empty", problem)
        _assert_same_plan(from_store, fresh)

    def test_engine_fingerprint_invalidates(self, tmp_path, monkeypatch):
        problem, history = _problem_and_history()
        cold = _plan(history, tmp_path, problem)
        clear_shared_caches()
        monkeypatch.setitem(artifacts._FINGERPRINT_MEMO, "fp", "0" * 64)
        metrics = obs.get_metrics()
        hits = metrics.get("cache.artifact_hits.group_tables")
        rebuilt = _plan(history, tmp_path, problem)
        assert metrics.get("cache.artifact_hits.group_tables") == hits
        _assert_same_plan(cold, rebuilt)

    def test_corrupted_store_fails_open(self, tmp_path):
        problem, history = _problem_and_history()
        cold = _plan(history, tmp_path, problem)
        clear_shared_caches()
        damaged = list(tmp_path.rglob("*.npz"))
        assert damaged
        for path in damaged:
            path.write_bytes(b"garbage")
        errors_before = obs.get_metrics().get(
            "cache.artifact_errors.group_tables"
        )
        warm = _plan(history, tmp_path, problem)
        _assert_same_plan(cold, warm)
        assert (
            obs.get_metrics().get("cache.artifact_errors.group_tables")
            > errors_before
        )
        # The bad files were unlinked and the rebuild re-saved valid
        # artifacts in their place: every surviving file loads cleanly.
        for path in tmp_path.rglob("*.npz"):
            assert path.read_bytes() != b"garbage"
            with np.load(path, allow_pickle=False):
                pass

    def test_plan_invariant_under_cache_and_grid_config(self, tmp_path):
        problem, history = _problem_and_history()
        reference = _plan(history, tmp_path / "ref", problem)
        for overrides in (
            dict(table_cache=False),
            dict(artifact_cache=False),
            dict(grid_eval=False),
            dict(grid_eval=False, table_cache=False),
        ):
            clear_shared_caches()
            got = _plan(history, tmp_path / "alt", problem, **overrides)
            _assert_same_plan(reference, got)


class TestKernelTablesDiskTier:
    def _big_trace(self):
        n = kernels._STORE_MIN_SEGMENTS
        rng = np.random.default_rng(42)
        times = np.arange(n, dtype=np.float64) * 0.25
        prices = 0.05 + 0.2 * rng.random(n)
        return SpotPriceTrace(times, prices, float(n) * 0.25)

    def test_roundtrip_is_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, str(tmp_path))
        trace = self._big_trace()
        built = kernels.trace_tables(trace, 0.15)
        assert list(tmp_path.rglob("*.npz"))  # cold pass wrote the tier
        kernels.clear_table_cache()
        loaded = kernels.trace_tables(trace, 0.15)
        for field in ("times", "times_ext", "below",
                      "nxt_below_ext", "nxt_above_ext"):
            a, b = getattr(built, field), getattr(loaded, field)
            assert a.dtype == b.dtype and a.tobytes() == b.tobytes()

    def test_small_traces_stay_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_DIR_ENV, str(tmp_path))
        kernels.trace_tables(SpotPriceTrace([0.0], [0.05], 10.0), 0.1)
        assert not list(tmp_path.rglob("*.npz"))


class TestEviction:
    """LRU size/age eviction and the config/env cap resolution."""

    def _fill(self, store, n=4, kind="kernel"):
        """``n`` same-size artifacts with mtimes 1000, 1001, ... (oldest
        first by key order)."""
        paths = []
        for i in range(n):
            key = f"{i:02x}" + "f" * 62
            assert store.save(kind, key, {"a": np.arange(32.0)})
            p = store.path_for(kind, key)
            os.utime(p, (1000.0 + i, 1000.0 + i))
            paths.append(p)
        return paths

    def test_size_eviction_drops_least_recently_used(self, tmp_path):
        store = ArtifactStore(tmp_path)
        paths = self._fill(store, n=4)
        keep = sum(p.stat().st_size for p in paths[2:])
        removed, freed = store.evict(max_bytes=keep)
        assert removed == 2
        assert freed > 0
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()

    def test_load_touches_mtime_so_hits_stay_resident(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (old,) = self._fill(store, n=1)
        assert old.stat().st_mtime == 1000.0
        assert store.load("kernel", "00" + "f" * 62) is not None
        assert old.stat().st_mtime > 1000.0

    def test_age_eviction_against_explicit_now(self, tmp_path):
        store = ArtifactStore(tmp_path)
        paths = self._fill(store, n=4)  # mtimes 1000..1003
        removed, _freed = store.evict(
            max_age_days=1.0, now=1002.0 + 86400.0
        )
        assert removed == 2
        assert [p.exists() for p in paths] == [False, False, True, True]

    def test_evict_without_bounds_is_a_noop(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._fill(store, n=2)
        assert store.evict() == (0, 0)
        assert store.stats()["files"] == 2

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._fill(store, n=3, kind="planner")
        removed, freed = store.clear()
        assert removed == 3 and freed > 0
        assert store.stats() == {"files": 0, "bytes": 0, "by_kind": {}}

    def test_save_runs_periodic_eviction(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifacts, "_EVICT_EVERY_WRITES", 2)
        probe = ArtifactStore(tmp_path)
        self._fill(probe, n=1)
        one_file = probe.stats()["bytes"]
        probe.clear()
        store = ArtifactStore(tmp_path, max_bytes=one_file)
        self._fill(store, n=5)
        # The cap is enforced within one eviction period of the writes.
        assert store.stats()["bytes"] <= 2 * one_file

    def test_get_store_applies_cap_on_open(self, tmp_path, monkeypatch):
        seed = ArtifactStore(tmp_path)
        paths = self._fill(seed, n=4)
        keep = sum(p.stat().st_size for p in paths[3:])
        monkeypatch.setenv(artifacts.ARTIFACT_MAX_BYTES_ENV, str(keep))
        store = get_store(SompiConfig(artifact_dir=str(tmp_path)))
        assert store is not None and store.max_bytes == keep
        assert store.stats()["bytes"] <= keep
        assert paths[3].exists() and not paths[0].exists()


class TestMaxBytesResolution:
    def test_config_value_used_without_env(self, monkeypatch):
        monkeypatch.delenv(artifacts.ARTIFACT_MAX_BYTES_ENV, raising=False)
        cfg = SompiConfig(artifact_max_bytes=123)
        assert artifacts.resolve_max_bytes(cfg) == 123
        assert artifacts.resolve_max_bytes(SompiConfig()) is None

    def test_env_wins_over_config(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_MAX_BYTES_ENV, "50")
        assert artifacts.resolve_max_bytes(
            SompiConfig(artifact_max_bytes=100)
        ) == 50

    def test_empty_env_means_no_limit(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_MAX_BYTES_ENV, "")
        assert artifacts.resolve_max_bytes(
            SompiConfig(artifact_max_bytes=100)
        ) is None

    def test_nonpositive_env_means_no_limit(self, monkeypatch):
        monkeypatch.setenv(artifacts.ARTIFACT_MAX_BYTES_ENV, "0")
        assert artifacts.resolve_max_bytes(None) is None

    def test_garbage_env_raises(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv(artifacts.ARTIFACT_MAX_BYTES_ENV, "lots")
        with pytest.raises(ConfigurationError, match="integer"):
            artifacts.resolve_max_bytes(None)

    def test_config_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="artifact_max_bytes"):
            SompiConfig(artifact_max_bytes=0)
