"""Failure-rate model tests (Section 4.4 machinery)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.market.failure import FailureModel
from repro.market.trace import SpotPriceTrace


@pytest.fixture
def fm(step_trace) -> FailureModel:
    # step_trace: 0.10 on [0,5), 0.50 on [5,8), 0.05 on [8,20), 2.0 on [20,24)
    return FailureModel(step_trace, step_hours=1.0)


class TestBasics:
    def test_step_count(self, fm):
        assert fm.n_steps == 24

    def test_max_min_price(self, fm):
        assert fm.max_price() == 2.0
        assert fm.min_price() == 0.05

    def test_too_short_history(self):
        tiny = SpotPriceTrace([0.0], [0.1], 0.5)
        with pytest.raises(TraceError):
            FailureModel(tiny, step_hours=1.0)


class TestExpectedPrice:
    def test_mean_of_prices_below_bid(self, fm):
        # bid 0.2 admits prices 0.10 (5h) and 0.05 (12h)
        expected = (5 * 0.10 + 12 * 0.05) / 17
        assert fm.expected_price(0.2) == pytest.approx(expected, rel=1e-6)

    def test_bid_above_everything(self, fm, step_trace):
        assert fm.expected_price(10.0) == pytest.approx(step_trace.mean_price(), rel=1e-6)

    def test_bid_below_everything_returns_bid(self, fm):
        assert fm.expected_price(0.01) == 0.01

    def test_monotone_in_bid(self, fm):
        bids = [0.06, 0.2, 0.6, 3.0]
        prices = [fm.expected_price(b) for b in bids]
        assert prices == sorted(prices)


class TestLaunchProbability:
    def test_bid_covers_everything(self, fm):
        assert fm.launch_probability(2.0) == 1.0

    def test_bid_below_everything(self, fm):
        assert fm.launch_probability(0.01) == 0.0

    def test_partial(self, fm):
        # start-of-step price <= 0.10 in 17 of 24 steps
        assert fm.launch_probability(0.10) == pytest.approx(17 / 24)


class TestStepsToFailure:
    def test_non_launchable_marked(self, fm):
        dist = fm.steps_to_failure(0.10)
        # steps 5..7 start at 0.50, steps 20..23 at 2.0 -> -1
        assert set(np.flatnonzero(dist == -1)) == {5, 6, 7, 20, 21, 22, 23}

    def test_first_exceedance_distance(self, fm):
        dist = fm.steps_to_failure(0.10)
        # from step 0, the price first exceeds 0.10 at step 5 -> 5 steps
        assert dist[0] == 5
        assert dist[4] == 1
        # from step 8 (price 0.05), exceedance at step 20 -> 12 steps
        assert dist[8] == 12

    def test_circular_wraparound(self, fm):
        dist = fm.steps_to_failure(0.10)
        # Dying at step 5 when starting at step 4 wraps nothing, but a
        # start late in the trace must see the *wrapped* spike at step 5.
        # Step 19 (price 0.05): next exceedance step 20 -> 1.
        assert dist[19] == 1

    def test_unbounded_bid_never_fails(self, fm):
        dist = fm.steps_to_failure(99.0)
        assert np.all(dist == fm.n_steps)


class TestFailurePmf:
    def test_sums_to_one(self, fm):
        for bid in (0.06, 0.10, 0.5, 2.0):
            pmf = fm.failure_pmf(bid, 10)
            assert pmf.sum() == pytest.approx(1.0)
            assert np.all(pmf >= 0)

    def test_high_bid_always_completes(self, fm):
        pmf = fm.failure_pmf(99.0, 10)
        assert pmf[-1] == 1.0

    def test_unlaunchable_bid_fails_instantly(self, fm):
        pmf = fm.failure_pmf(0.001, 10)
        assert pmf[0] == 1.0

    def test_horizon_validation(self, fm):
        with pytest.raises(ConfigurationError):
            fm.failure_pmf(0.1, 0)

    def test_bid_at_historical_max_completes(self, fm):
        # Completion probability is NOT monotone in the bid (a higher bid
        # adds launchable-but-doomed starting points to the conditional),
        # but bidding the historical maximum always completes.
        assert fm.failure_pmf(fm.max_price(), 12)[-1] == 1.0
        assert fm.failure_pmf(0.06, 12)[-1] > 0.0

    def test_exact_value_on_known_trace(self, fm):
        # bid 0.10, horizon 6: launchable starts are 0..4 and 8..19.
        # dist values: [5,4,3,2,1] and [12,11,10,9,8,7,6,5,4,3,2,1].
        pmf = fm.failure_pmf(0.10, 6)
        # t < 6 failures: from dist: 1(x2),2(x2),3(x2),4(x2),5(x2) = each 2/17
        assert pmf[1] == pytest.approx(2 / 17)
        assert pmf[5] == pytest.approx(2 / 17)
        assert pmf[0] == 0.0
        # survive >= 6 steps: dist in {12,11,10,9,8,7,6} -> 7/17
        assert pmf[6] == pytest.approx(7 / 17)


class TestSurvivalAndMttf:
    def test_survival_starts_at_one_and_decreases(self, fm):
        surv = fm.survival_curve(0.10, 12)
        assert surv[0] == 1.0
        assert np.all(np.diff(surv) <= 1e-12)

    def test_survival_matches_pmf_tail(self, fm):
        pmf = fm.failure_pmf(0.10, 12)
        surv = fm.survival_curve(0.10, 12)
        assert surv[-1] == pytest.approx(pmf[-1])

    def test_mttf_infinite_when_never_failing(self, fm):
        assert fm.mttf_hours(99.0) == np.inf

    def test_mttf_zero_when_never_launching(self, fm):
        assert fm.mttf_hours(0.001) == 0.0

    def test_mttf_increases_with_bid(self, fm):
        assert fm.mttf_hours(0.6) >= fm.mttf_hours(0.10)


class TestSampledPmf:
    def test_sampled_approximates_exact(self, fm):
        rng = np.random.default_rng(0)
        exact = fm.failure_pmf(0.10, 12)
        sampled = fm.failure_pmf_sampled(0.10, 12, 200_000, rng)
        assert np.abs(exact - sampled).max() < 0.01

    def test_sampled_validates_n(self, fm):
        with pytest.raises(ConfigurationError):
            fm.failure_pmf_sampled(0.1, 5, 0, np.random.default_rng(0))


class TestSubhourSpikes:
    def test_short_spike_still_kills(self):
        """A 10-minute spike inside an hour step must count as a failure."""
        trace = SpotPriceTrace(
            times=[0.0, 2.5, 2.6],
            prices=[0.10, 5.0, 0.10],
            end_time=48.0,
        )
        fm = FailureModel(trace, step_hours=1.0)
        dist = fm.steps_to_failure(0.2)
        assert dist[0] == 2  # dies in step 2 despite hourly start price 0.10
