"""On-demand type selection tests (Section 4.1)."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.ondemand_select import feasible_options, select_ondemand
from repro.core.problem import OnDemandOption
from repro.errors import InfeasibleError


@pytest.fixture
def options():
    return (
        OnDemandOption(get_instance_type("m1.small"), 128, 40.0),  # $225.3
        OnDemandOption(get_instance_type("m1.medium"), 128, 18.0),  # $200.4
        OnDemandOption(get_instance_type("c3.xlarge"), 32, 14.0),  # $94.1
        OnDemandOption(get_instance_type("cc2.8xlarge"), 4, 13.0),  # $104
    )


class TestSelection:
    def test_picks_cheapest_feasible(self, options):
        idx, opt = select_ondemand(options, deadline=25.0, slack=0.2)
        # budget = 20h: c3.xlarge (14h, $94.1) is cheapest feasible
        assert opt.itype.name == "c3.xlarge"
        assert idx == 2

    def test_tight_deadline_forces_fastest(self, options):
        idx, opt = select_ondemand(options, deadline=17.0, slack=0.2)
        # budget 13.6h: only cc2.8xlarge fits
        assert opt.itype.name == "cc2.8xlarge"

    def test_loose_deadline_allows_cheapest_overall(self, options):
        _, opt = select_ondemand(options, deadline=100.0, slack=0.2)
        assert opt.itype.name == "c3.xlarge"  # globally cheapest here

    def test_infeasible_raises_with_fastest_named(self, options):
        with pytest.raises(InfeasibleError, match="cc2.8xlarge"):
            select_ondemand(options, deadline=10.0, slack=0.2)

    def test_slack_shrinks_budget(self, options):
        # Without slack, 14h fits a 14h deadline; with 20% the budget
        # drops to 11.2h and nothing fits.
        _, no_slack = select_ondemand(options, 14.0, 0.0)
        assert no_slack.itype.name == "c3.xlarge"
        with pytest.raises(InfeasibleError):
            select_ondemand(options, 14.0, 0.2)
        _, with_slack = select_ondemand(options, 17.0, 0.2)
        assert with_slack.itype.name == "cc2.8xlarge"


class TestFeasible:
    def test_feasible_indices(self, options):
        assert feasible_options(options, 25.0, 0.2) == [1, 2, 3]
        assert feasible_options(options, 100.0, 0.0) == [0, 1, 2, 3]
        assert feasible_options(options, 5.0, 0.0) == []
