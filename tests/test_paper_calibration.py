"""Calibration invariants the reproduction depends on.

These pin the *documented* relationships between catalog, presets and
workload models (DESIGN.md §1, presets docstrings).  If a future
recalibration breaks one of them, the corresponding paper observation
(named in each test) silently stops reproducing — these tests make that
loud instead.
"""

import pytest

from repro.apps import make_app
from repro.cloud.instance_types import PAPER_TYPES, get_instance_type
from repro.market.presets import market_params
from repro.mpi.timing import estimate_execution_hours


def spot_base(tname: str) -> float:
    return market_params(tname, "us-east-1c").base_price


class TestSpotPriceCalibration:
    def test_per_compute_unit_spot_ordering(self):
        """Figure 7a's staircase: the optimizer walks cc2.8xlarge ->
        m1.medium -> m1.small as the deadline loosens, which requires
        the per-compute-unit spot cost to order small < medium < cc2."""

        def per_unit(tname):
            it = get_instance_type(tname)
            return spot_base(tname) / it.total_speed

        assert per_unit("m1.small") < per_unit("m1.medium")
        assert per_unit("m1.medium") < per_unit("c3.xlarge")
        assert per_unit("c3.xlarge") < per_unit("cc2.8xlarge")

    def test_spot_fraction_of_ondemand_in_2014_range(self):
        for tname in PAPER_TYPES:
            frac = spot_base(tname) / get_instance_type(tname).ondemand_price
            assert 0.05 < frac < 0.5  # Section 2.1: spot is much cheaper

    def test_zone_personalities(self):
        """Figure 1's spatial variation: 1a spikier than 1b."""
        a = market_params("m1.medium", "us-east-1a")
        b = market_params("m1.medium", "us-east-1b")
        assert a.spike_rate > 5 * b.spike_rate
        assert a.diurnal_amplitude > b.diurnal_amplitude

    def test_same_base_price_across_zones(self):
        """Zones differ in dynamics, not in the calm price level."""
        for tname in PAPER_TYPES:
            bases = {
                market_params(tname, z).base_price
                for z in ("us-east-1a", "us-east-1b", "us-east-1c")
            }
            assert len(bases) == 1


class TestWorkloadCalibration:
    def test_baseline_types_per_app_class(self):
        """Section 5.3.1's per-class winners (fastest on-demand type)."""

        def fastest(name):
            app = make_app(name)
            return min(
                PAPER_TYPES,
                key=lambda t: estimate_execution_hours(
                    app.profile(), get_instance_type(t)
                ),
            )

        # compute kernels: a powerful type wins
        for name in ("BT", "SP"):
            assert fastest(name) in ("cc2.8xlarge", "c3.xlarge")
        # communication kernels: cc2.8xlarge (10 GbE + shared memory)
        for name in ("FT", "IS"):
            assert fastest(name) == "cc2.8xlarge"
        # IO kernel: anything but cc2.8xlarge (aggregate disk bandwidth)
        assert fastest("BTIO") != "cc2.8xlarge"

    def test_loose_deadline_admits_m1_medium_for_compute(self):
        """Marathe-Opt's loose-deadline advantage requires m1.medium to
        fit within 1.5x Baseline Time for compute kernels."""
        for name in ("BT", "SP", "LU"):
            app = make_app(name)
            times = {
                t: estimate_execution_hours(app.profile(), get_instance_type(t))
                for t in PAPER_TYPES
            }
            assert times["m1.medium"] <= 1.5 * min(times.values())

    def test_workloads_are_hours_scale(self):
        """The optimizer's 1-hour failure grid needs hours-scale jobs."""
        for name in ("BT", "SP", "LU", "FT", "IS", "BTIO"):
            app = make_app(name)
            fastest = min(
                estimate_execution_hours(app.profile(), get_instance_type(t))
                for t in PAPER_TYPES
            )
            assert 3.0 < fastest < 60.0

    def test_checkpoint_overhead_well_below_interval_scale(self):
        """Young's interval ~ sqrt(2*O*MTTF) needs O << job length."""
        from repro.mpi.timing import estimate_checkpoint

        for name in ("BT", "FT"):
            profile = make_app(name).profile()
            for tname in PAPER_TYPES:
                ckpt = estimate_checkpoint(profile, get_instance_type(tname))
                T = estimate_execution_hours(profile, get_instance_type(tname))
                assert ckpt.checkpoint_hours < 0.05 * T
