"""Network model and collective cost tests."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.errors import ConfigurationError
from repro.mpi.collectives import COLLECTIVE_ALGORITHMS, collective_time
from repro.mpi.network import ClusterShape, NetworkModel


class TestClusterShape:
    def test_instances_and_placement(self):
        shape = ClusterShape(get_instance_type("cc2.8xlarge"), 128)
        assert shape.n_instances == 4
        assert shape.procs_per_instance == 32
        assert shape.node_of(0) == 0
        assert shape.node_of(31) == 0
        assert shape.node_of(32) == 1

    def test_inter_node_fraction(self):
        cc2 = ClusterShape(get_instance_type("cc2.8xlarge"), 128)
        small = ClusterShape(get_instance_type("m1.small"), 128)
        assert cc2.inter_node_fraction == pytest.approx(1 - 31 / 127)
        assert small.inter_node_fraction == 1.0

    def test_single_process(self):
        shape = ClusterShape(get_instance_type("m1.small"), 1)
        assert shape.inter_node_fraction == 0.0

    def test_aggregate_disk_scales_with_instances(self):
        small = ClusterShape(get_instance_type("m1.small"), 128)
        cc2 = ClusterShape(get_instance_type("cc2.8xlarge"), 128)
        # The BTIO story: 128 small disks beat 4 big ones.
        assert small.aggregate_disk_bps > 5 * cc2.aggregate_disk_bps

    def test_rank_bounds(self):
        shape = ClusterShape(get_instance_type("m1.small"), 4)
        with pytest.raises(ConfigurationError):
            shape.node_of(4)


class TestNetworkModel:
    def test_intra_faster_than_inter(self):
        net = NetworkModel(ClusterShape(get_instance_type("cc2.8xlarge"), 64))
        intra = net.p2p_seconds(0, 1, 1_000_000)
        inter = net.p2p_seconds(0, 33, 1_000_000)
        assert intra < inter

    def test_self_message_free(self):
        net = NetworkModel(ClusterShape(get_instance_type("m1.small"), 4))
        assert net.p2p_seconds(2, 2, 1e9) == 0.0

    def test_oversubscription_kicks_in_for_large_fleets(self):
        small_fleet = NetworkModel(ClusterShape(get_instance_type("cc2.8xlarge"), 128))
        big_fleet = NetworkModel(ClusterShape(get_instance_type("m1.small"), 128))
        assert small_fleet.oversubscription == 1.0  # 4 instances
        assert big_fleet.oversubscription == 4.0  # 128 instances

    def test_cc2_effective_beta_beats_m1small(self):
        # 10 GbE + 24/32 local neighbours vs oversubscribed 125 Mbps
        cc2 = NetworkModel(ClusterShape(get_instance_type("cc2.8xlarge"), 128))
        small = NetworkModel(ClusterShape(get_instance_type("m1.small"), 128))
        assert cc2.effective_beta() < small.effective_beta()

    def test_negative_bytes_rejected(self):
        net = NetworkModel(ClusterShape(get_instance_type("m1.small"), 4))
        with pytest.raises(ConfigurationError):
            net.p2p_seconds(0, 1, -1.0)


class TestCollectives:
    A, B = 1e-4, 1e-8

    def test_single_process_collectives_free(self):
        for name in COLLECTIVE_ALGORITHMS:
            assert collective_time(name, 1, 1e6, self.A, self.B) == 0.0

    def test_barrier_latency_only(self):
        t8 = collective_time("barrier", 8, 0.0, self.A, self.B)
        assert t8 == pytest.approx(3 * self.A)

    def test_bcast_log_scaling(self):
        t2 = collective_time("bcast", 2, 1e6, self.A, self.B)
        t16 = collective_time("bcast", 16, 1e6, self.A, self.B)
        assert t16 == pytest.approx(4 * t2)

    def test_allreduce_bandwidth_term(self):
        # For large messages the 2*n*beta*(p-1)/p term dominates.
        t = collective_time("allreduce", 128, 1e9, 0.0, self.B)
        assert t == pytest.approx(2 * 1e9 * self.B * 127 / 128)

    def test_alltoall_equals_allgather_cost(self):
        ta = collective_time("alltoall", 16, 1e6, self.A, self.B)
        tg = collective_time("allgather", 16, 1e6, self.A, self.B)
        assert ta == tg

    def test_alltoall_latency_grows_linearly(self):
        t8 = collective_time("alltoall", 8, 0.0, self.A, self.B)
        t64 = collective_time("alltoall", 64, 0.0, self.A, self.B)
        assert t64 / t8 == pytest.approx(63 / 7)

    def test_unknown_collective(self):
        with pytest.raises(ConfigurationError):
            collective_time("allswap", 4, 1.0, self.A, self.B)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            collective_time("bcast", 0, 1.0, self.A, self.B)
        with pytest.raises(ConfigurationError):
            collective_time("bcast", 4, -1.0, self.A, self.B)
