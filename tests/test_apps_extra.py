"""CG and MG extension-kernel tests."""

import pytest

from repro.apps import CG, MG, EXTRA_APPS, make_app
from repro.apps.base import WorkloadCategory
from repro.cloud.instance_types import get_instance_type
from repro.mpi.runtime import MPIRuntime
from repro.mpi.timing import estimate_execution_hours

C3 = get_instance_type("c3.xlarge")


def T(app, type_name):
    return estimate_execution_hours(app.profile(), get_instance_type(type_name))


class TestFactory:
    def test_extra_apps_constructible(self):
        for name in EXTRA_APPS:
            app = make_app(name)
            assert app.profile().instr_giga > 0

    def test_categories(self):
        assert CG().category is WorkloadCategory.COMMUNICATION
        assert MG().category is WorkloadCategory.COMPUTE


class TestShapes:
    def test_hours_scale_workloads(self):
        for name in EXTRA_APPS:
            app = make_app(name)
            assert T(app, "cc2.8xlarge") > 2.0  # the optimizer's hour grid bites

    def test_cg_latency_bound_prefers_fat_nodes(self):
        app = CG()
        assert T(app, "cc2.8xlarge") < T(app, "m1.medium")
        assert T(app, "cc2.8xlarge") < T(app, "c3.xlarge")

    def test_cg_dot_products_dominate_message_count(self):
        prof = CG().profile()
        assert prof.collectives["allreduce"].count > 1000

    def test_mg_class_scaling(self):
        a = MG(problem_class="A", repeats=1).profile()
        c = MG(problem_class="C", repeats=1).profile()
        assert c.instr_giga > a.instr_giga

    def test_mg_message_count_includes_levels(self):
        prof = MG(repeats=1).profile()
        # 6 faces x log2(256)=8 levels x 128 ranks x iterations
        assert prof.p2p_messages > prof.collectives["allreduce"].count * 6


class TestRankPrograms:
    @pytest.mark.parametrize("cls", [CG, MG])
    def test_runs_on_des_runtime(self, cls):
        app = cls(n_processes=4)
        runtime = MPIRuntime(
            C3, 4, lambda mpi: app.rank_program(mpi, iterations=2, scale=1e-5)
        )
        stats = runtime.run()
        assert stats.wall_seconds > 0
        # allreduced result agrees across ranks
        assert len(set(stats.rank_results)) == 1

    def test_cg_uses_sendrecv_without_deadlock(self):
        app = CG(n_processes=8)
        runtime = MPIRuntime(
            C3, 8, lambda mpi: app.rank_program(mpi, iterations=3, scale=1e-5)
        )
        stats = runtime.run()
        assert stats.profile.p2p_messages > 0


class TestOptimization:
    def test_sompi_plans_extra_apps(self, paper_env):
        for name in EXTRA_APPS:
            problem = paper_env.problem(name, 1.5)
            plan = paper_env.sompi_plan(problem)
            assert plan.expectation.time <= problem.deadline + 1e-9
            assert plan.expectation.cost < paper_env.baseline_cost(
                paper_env.app(name)
            )
