"""Seeded RNG registry tests."""

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(7, "a") == derive_seed(7, "a")


def test_derive_seed_varies_with_name_and_root():
    assert derive_seed(7, "a") != derive_seed(7, "b")
    assert derive_seed(7, "a") != derive_seed(8, "a")


def test_nearby_roots_give_unrelated_streams():
    """Seed sweeps 0,1,2,... must not produce correlated child streams."""
    draws = [
        np.random.default_rng(derive_seed(s, "x")).random(4) for s in range(5)
    ]
    for i in range(5):
        for j in range(i + 1, 5):
            assert not np.allclose(draws[i], draws[j])


def test_stream_cached():
    reg = RngRegistry(3)
    s1 = reg.stream("m")
    s1.random()  # advance
    assert reg.stream("m") is s1


def test_fresh_restarts_stream():
    reg = RngRegistry(3)
    a = reg.fresh("m").random(3)
    b = reg.fresh("m").random(3)
    assert np.allclose(a, b)


def test_streams_independent_of_creation_order():
    r1 = RngRegistry(5)
    r2 = RngRegistry(5)
    _ = r1.stream("a")
    x1 = r1.stream("b").random(3)
    x2 = r2.stream("b").random(3)  # no "a" created first
    assert np.allclose(x1, x2)


def test_spawn_child_registry():
    reg = RngRegistry(9)
    child = reg.spawn("mc")
    assert child.root_seed == derive_seed(9, "mc")
    assert np.allclose(
        child.fresh("x").random(2), RngRegistry(derive_seed(9, "mc")).fresh("x").random(2)
    )
