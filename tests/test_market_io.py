"""Trace persistence tests: CSV, JSON, AWS format."""

import json

import numpy as np
import pytest

from repro.errors import TraceError
from repro.market.history import MarketKey, SpotPriceHistory
from repro.market.io import (
    history_from_aws,
    history_from_json,
    history_to_json,
    load_history,
    save_history,
    trace_from_csv,
    trace_to_csv,
)
from repro.market.presets import build_history
from repro.market.trace import SpotPriceTrace


class TestCsv:
    def test_roundtrip(self, step_trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace_to_csv(step_trace, path)
        back = trace_from_csv(path)
        assert back == step_trace

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError, match="header"):
            trace_from_csv(path)

    def test_missing_end_marker(self, tmp_path):
        path = tmp_path / "noend.csv"
        path.write_text("time_hours,price\n0.0,0.1\n")
        with pytest.raises(TraceError, match="end marker"):
            trace_from_csv(path)

    def test_float_precision_preserved(self, tmp_path):
        trace = SpotPriceTrace([0.0, 1.0 / 3.0], [0.1, 1e-7], 2.0)
        path = tmp_path / "precise.csv"
        trace_to_csv(trace, path)
        back = trace_from_csv(path)
        assert np.array_equal(back.times, trace.times)
        assert np.array_equal(back.prices, trace.prices)


class TestJson:
    def test_roundtrip(self, tmp_path):
        history = build_history(48.0, seed=3)
        path = tmp_path / "hist.json"
        save_history(history, path)
        back = load_history(path)
        assert len(back) == len(history)
        for key, trace in history.items():
            assert back.get(key) == trace

    def test_rejects_wrong_format(self):
        with pytest.raises(TraceError):
            history_from_json(json.dumps({"format": "something-else"}))

    def test_rejects_invalid_json(self):
        with pytest.raises(TraceError):
            history_from_json("{nope")

    def test_empty_history_roundtrips(self):
        back = history_from_json(history_to_json(SpotPriceHistory()))
        assert len(back) == 0


class TestAws:
    def aws_doc(self):
        return {
            "SpotPriceHistory": [
                {
                    "Timestamp": "2014-08-01T00:00:00Z",
                    "SpotPrice": "0.0091",
                    "InstanceType": "m1.medium",
                    "AvailabilityZone": "us-east-1a",
                },
                {
                    "Timestamp": "2014-08-01T02:30:00Z",
                    "SpotPrice": "1.5000",
                    "InstanceType": "m1.medium",
                    "AvailabilityZone": "us-east-1a",
                },
                {
                    "Timestamp": "2014-08-01T01:00:00+00:00",
                    "SpotPrice": "0.2710",
                    "InstanceType": "cc2.8xlarge",
                    "AvailabilityZone": "us-east-1b",
                },
            ]
        }

    def test_parses_markets_and_rebases_time(self):
        history = history_from_aws(self.aws_doc())
        medium = history.get(MarketKey("m1.medium", "us-east-1a"))
        assert medium.start_time == 0.0
        assert medium.price_at(0.0) == pytest.approx(0.0091)
        assert medium.price_at(2.5) == pytest.approx(1.5)
        cc2 = history.get(MarketKey("cc2.8xlarge", "us-east-1b"))
        assert cc2.start_time == pytest.approx(1.0)

    def test_accepts_json_string(self):
        history = history_from_aws(json.dumps(self.aws_doc()))
        assert len(history) == 2

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            history_from_aws({"SpotPriceHistory": []})

    def test_rejects_malformed_record(self):
        with pytest.raises(TraceError):
            history_from_aws({"SpotPriceHistory": [{"Timestamp": "garbage"}]})

    def test_same_instant_update_keeps_latest(self):
        doc = {
            "SpotPriceHistory": [
                {
                    "Timestamp": "2014-08-01T00:00:00Z",
                    "SpotPrice": "0.1",
                    "InstanceType": "m1.small",
                    "AvailabilityZone": "us-east-1a",
                },
                {
                    "Timestamp": "2014-08-01T00:00:00Z",
                    "SpotPrice": "0.2",
                    "InstanceType": "m1.small",
                    "AvailabilityZone": "us-east-1a",
                },
            ]
        }
        history = history_from_aws(doc)
        trace = history.get(MarketKey("m1.small", "us-east-1a"))
        assert trace.price_at(0.0) == 0.2

    def test_roundtrip_through_failure_model(self):
        """Real-format data flows into the optimizer machinery."""
        from repro.market.failure import FailureModel

        history = history_from_aws(self.aws_doc(), window_end_hours_after_last=24.0)
        fm = FailureModel(history.get(MarketKey("m1.medium", "us-east-1a")))
        assert fm.max_price() == pytest.approx(1.5)
