"""SpotPriceTrace tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.market.trace import SpotPriceTrace


class TestConstruction:
    def test_rejects_unsorted_times(self):
        with pytest.raises(TraceError):
            SpotPriceTrace([0.0, 2.0, 1.0], [1, 1, 1], 3.0)

    def test_rejects_duplicate_times(self):
        with pytest.raises(TraceError):
            SpotPriceTrace([0.0, 1.0, 1.0], [1, 1, 1], 3.0)

    def test_rejects_negative_prices(self):
        with pytest.raises(TraceError):
            SpotPriceTrace([0.0], [-0.1], 1.0)

    def test_rejects_end_before_last_segment(self):
        with pytest.raises(TraceError):
            SpotPriceTrace([0.0, 5.0], [1, 2], 5.0)

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            SpotPriceTrace([], [], 1.0)

    def test_rejects_nan(self):
        with pytest.raises(TraceError):
            SpotPriceTrace([0.0], [np.nan], 1.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(TraceError):
            SpotPriceTrace([0.0, 1.0], [1.0], 2.0)


class TestAccessors:
    def test_price_at_segment_boundaries(self, step_trace):
        assert step_trace.price_at(0.0) == 0.10
        assert step_trace.price_at(4.999) == 0.10
        assert step_trace.price_at(5.0) == 0.50
        assert step_trace.price_at(19.999) == 0.05
        assert step_trace.price_at(20.0) == 2.0

    def test_price_at_out_of_window(self, step_trace):
        with pytest.raises(TraceError):
            step_trace.price_at(24.0)
        with pytest.raises(TraceError):
            step_trace.price_at(-0.1)

    def test_prices_at_vectorised(self, step_trace):
        out = step_trace.prices_at(np.array([0.0, 6.0, 10.0, 21.0]))
        assert np.allclose(out, [0.10, 0.50, 0.05, 2.0])

    def test_segment_durations(self, step_trace):
        assert np.allclose(step_trace.segment_durations(), [5, 3, 12, 4])

    def test_segments_iteration(self, step_trace):
        segs = list(step_trace.segments())
        assert segs[0] == (0.0, 5.0, 0.10)
        assert segs[-1] == (20.0, 24.0, 2.0)

    def test_duration(self, step_trace):
        assert step_trace.duration == 24.0


class TestResample:
    def test_hourly_grid(self, step_trace):
        grid = step_trace.resample(1.0)
        assert grid.shape == (24,)
        assert grid[0] == 0.10 and grid[5] == 0.50 and grid[8] == 0.05
        assert grid[23] == 2.0

    def test_bad_step(self, step_trace):
        with pytest.raises(TraceError):
            step_trace.resample(0.0)

    def test_step_longer_than_window(self, step_trace):
        with pytest.raises(TraceError):
            step_trace.resample(100.0)


class TestTransforms:
    def test_slice_preserves_prices(self, step_trace):
        window = step_trace.slice(6.0, 22.0)
        assert window.price_at(6.0) == 0.50
        assert window.price_at(21.0) == 2.0
        assert window.start_time == 6.0 and window.end_time == 22.0

    def test_slice_out_of_bounds(self, step_trace):
        with pytest.raises(TraceError):
            step_trace.slice(-1.0, 5.0)
        with pytest.raises(TraceError):
            step_trace.slice(5.0, 25.0)

    def test_shift(self, step_trace):
        moved = step_trace.shift(100.0)
        assert moved.start_time == 100.0
        assert moved.price_at(105.0) == 0.50

    def test_concat(self, step_trace, flat_trace):
        joined = step_trace.concat(flat_trace)
        assert joined.duration == pytest.approx(24.0 + 240.0)
        assert joined.price_at(23.0) == 2.0
        assert joined.price_at(25.0) == 0.10

    def test_slice_then_statistics(self, step_trace):
        w = step_trace.slice(8.0, 20.0)
        assert w.mean_price() == pytest.approx(0.05)


class TestStatistics:
    def test_max_min(self, step_trace):
        assert step_trace.max_price() == 2.0
        assert step_trace.min_price() == 0.05

    def test_time_weighted_mean(self, step_trace):
        expected = (5 * 0.10 + 3 * 0.50 + 12 * 0.05 + 4 * 2.0) / 24
        assert step_trace.mean_price() == pytest.approx(expected)

    def test_fraction_below(self, step_trace):
        # price <= 0.10 holds on [0,5) and [8,20): 17 of 24 hours
        assert step_trace.fraction_below(0.10) == pytest.approx(17 / 24)
        assert step_trace.fraction_below(10.0) == 1.0
        assert step_trace.fraction_below(0.01) == 0.0

    def test_quantile_monotone(self, step_trace):
        qs = [step_trace.quantile(q) for q in (0.1, 0.5, 0.9, 1.0)]
        assert qs == sorted(qs)
        assert step_trace.quantile(1.0) == 2.0

    def test_quantile_bounds(self, step_trace):
        with pytest.raises(TraceError):
            step_trace.quantile(1.5)

    def test_equality(self, step_trace):
        same = SpotPriceTrace(
            step_trace.times.copy(), step_trace.prices.copy(), step_trace.end_time
        )
        assert step_trace == same
        assert step_trace != step_trace.shift(1.0)
