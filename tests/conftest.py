"""Shared fixtures.

``step_trace`` is a tiny hand-written price trace with known first-
exceedance structure, used wherever exactness matters.  ``small_env`` is
a reduced :class:`ExperimentEnv` (two instance types, two zones, short
history) that keeps integration tests fast while exercising the full
pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.cloud.zones import Zone
from repro.config import SompiConfig
from repro.core.problem import CircleGroupSpec, OnDemandOption, Problem
from repro.experiments.env import ExperimentEnv
from repro.market.history import MarketKey
from repro.market.trace import SpotPriceTrace


@pytest.fixture(autouse=True, scope="session")
def _hermetic_artifact_dir(tmp_path_factory):
    """Point the artifact store at a per-run temp dir.

    Without this, any test that plans with ``artifact_cache`` enabled
    would read/write the developer's real ``~/.cache`` store, making
    test outcomes depend on what was planned before.

    ``REPRO_TEST_ARTIFACT_DIR`` overrides the temp dir with a shared,
    pre-warmed store (CI pre-warms one with ``repro artifacts warm``
    before the test shards, so every shard starts disk-warm).  Safe
    because artifacts are keyed by trace content + engine fingerprint
    and loads are fail-open: a warm store changes timings, never
    results.
    """
    import os

    from repro.execution.artifacts import ARTIFACT_DIR_ENV

    prev = os.environ.get(ARTIFACT_DIR_ENV)
    os.environ[ARTIFACT_DIR_ENV] = os.environ.get(
        "REPRO_TEST_ARTIFACT_DIR"
    ) or str(tmp_path_factory.mktemp("artifact-store"))
    yield
    if prev is None:
        os.environ.pop(ARTIFACT_DIR_ENV, None)
    else:
        os.environ[ARTIFACT_DIR_ENV] = prev


@pytest.fixture
def step_trace() -> SpotPriceTrace:
    """Price: 0.10 on [0,5), 0.50 on [5,8), 0.05 on [8,20), 2.0 on [20,24)."""
    return SpotPriceTrace(
        times=[0.0, 5.0, 8.0, 20.0],
        prices=[0.10, 0.50, 0.05, 2.0],
        end_time=24.0,
    )


@pytest.fixture
def flat_trace() -> SpotPriceTrace:
    """Constant price 0.10 over ten days."""
    return SpotPriceTrace(times=[0.0], prices=[0.10], end_time=240.0)


def make_group(
    key_type: str = "m1.small",
    zone: str = "us-east-1a",
    exec_time: float = 10.0,
    overhead: float = 0.1,
    recovery: float = 0.2,
    n_instances: int = 4,
) -> CircleGroupSpec:
    return CircleGroupSpec(
        key=MarketKey(key_type, zone),
        itype=get_instance_type(key_type),
        n_instances=n_instances,
        exec_time=exec_time,
        checkpoint_overhead=overhead,
        recovery_overhead=recovery,
    )


@pytest.fixture
def simple_problem() -> Problem:
    """Two m1.small groups in different zones + two on-demand options."""
    g1 = make_group(zone="us-east-1a")
    g2 = make_group(zone="us-east-1b")
    it_small = get_instance_type("m1.small")
    it_big = get_instance_type("cc2.8xlarge")
    return Problem(
        groups=(g1, g2),
        ondemand_options=(
            OnDemandOption(it_small, 4, 10.0),
            OnDemandOption(it_big, 1, 4.0),
        ),
        deadline=20.0,
    )


@pytest.fixture(scope="session")
def small_env() -> ExperimentEnv:
    """Reduced environment: 2 types x 2 zones, 21 days of history."""
    return ExperimentEnv.paper_default(
        seed=11,
        history_days=21.0,
        train_days=7.0,
        config=SompiConfig(kappa=2, bid_levels=5),
        instance_types=("m1.medium", "cc2.8xlarge"),
        zones=(Zone("us-east-1a"), Zone("us-east-1b")),
    )


@pytest.fixture(scope="session")
def paper_env() -> ExperimentEnv:
    """Full paper environment (4 types x 3 zones); session-scoped because
    building failure models is the slow part."""
    return ExperimentEnv.paper_default(seed=7)
