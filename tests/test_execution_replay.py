"""Trace-replay tests with hand-checkable traces."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.errors import ConfigurationError
from repro.execution.replay import (
    decision_horizon,
    replay_decision,
    replay_window,
)
from repro.market.history import MarketKey, SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


def history_for(problem, traces):
    h = SpotPriceHistory()
    for spec, trace in zip(problem.groups, traces):
        h.add(spec.key, trace)
    return h


@pytest.fixture
def one_group_problem():
    g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    return Problem(groups=(g,), ondemand_options=(od,), deadline=12.0)


def flat(price=0.05, hours=400.0):
    return SpotPriceTrace([0.0], [price], hours)


class TestCompletionPath:
    def test_failure_free_run(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(
            groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0
        )
        h = history_for(problem, [flat()])
        result = replay_decision(problem, decision, h, start_time=0.0)
        # F=2, T=6: checkpoints at 2 and 4 -> wall 7.0
        assert result.completed_by == "m1.small@us-east-1a"
        assert result.makespan == pytest.approx(7.0)
        # cost = price * wall * instances
        assert result.cost == pytest.approx(0.05 * 7.0 * 2)
        assert result.ondemand_hours == 0.0

    def test_no_checkpoint_interval_at_T(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(
            groups=(GroupDecision(0, 0.10, 6.0),), ondemand_index=0
        )
        h = history_for(problem, [flat()])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.makespan == pytest.approx(6.0)

    def test_waits_for_launch(self, one_group_problem):
        problem = one_group_problem
        trace = SpotPriceTrace([0.0, 3.0], [0.50, 0.05], 400.0)
        decision = Decision(groups=(GroupDecision(0, 0.10, 6.0),), ondemand_index=0)
        h = history_for(problem, [trace])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.makespan == pytest.approx(3.0 + 6.0)


class TestFailurePath:
    def test_death_then_ondemand_recovery(self, one_group_problem):
        problem = one_group_problem
        # dies at t=3 having checkpointed 2h of work (F=2, one ckpt at 2,
        # its write finished at wall 2.5; work resumed 2.5..3.0)
        trace = SpotPriceTrace([0.0, 3.0], [0.05, 0.50], 400.0)
        decision = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        h = history_for(problem, [trace])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.completed_by == "ondemand"
        rec = result.group_records[0]
        assert rec.terminated and not rec.completed
        assert rec.saved == pytest.approx(2.0)
        # ratio = (6 - 2 + 0.5)/6 = 0.75 -> od hours = 0.75 * 5
        assert result.ondemand_hours == pytest.approx(3.75)
        assert result.makespan == pytest.approx(3.0 + 3.75)
        od_cost = 3.75 * 8 * 0.210
        spot_cost = 0.05 * 3.0 * 2
        assert result.cost == pytest.approx(od_cost + spot_cost)

    def test_death_before_first_checkpoint_loses_everything(self, one_group_problem):
        problem = one_group_problem
        trace = SpotPriceTrace([0.0, 1.0], [0.05, 0.50], 400.0)
        decision = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        h = history_for(problem, [trace])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.ondemand_hours == pytest.approx(5.0)  # full rerun

    def test_never_launches_goes_straight_to_ondemand(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(GroupDecision(0, 0.01, 2.0),), ondemand_index=0)
        h = history_for(problem, [flat(price=0.5)])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.completed_by == "ondemand"
        assert result.cost == pytest.approx(5.0 * 8 * 0.210)

    def test_empty_decision_is_pure_ondemand(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(), ondemand_index=0)
        h = history_for(problem, [flat()])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.makespan == 5.0
        assert result.cost == pytest.approx(5.0 * 8 * 0.210)


class TestReplication:
    @pytest.fixture
    def two_group_problem(self):
        ga = make_group(zone="us-east-1a", exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
        gb = make_group(zone="us-east-1b", exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
        od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
        return Problem(groups=(ga, gb), ondemand_options=(od,), deadline=12.0)

    def test_winner_terminates_loser(self, two_group_problem):
        problem = two_group_problem
        # zone a launches late, zone b runs straight through
        slow = SpotPriceTrace([0.0, 4.0], [0.50, 0.05], 400.0)
        fast = flat(0.05)
        decision = Decision(
            groups=(GroupDecision(0, 0.10, 6.0), GroupDecision(1, 0.10, 6.0)),
            ondemand_index=0,
        )
        h = history_for(problem, [slow, fast])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.completed_by == "m1.small@us-east-1b"
        assert result.makespan == pytest.approx(6.0)
        # loser ran only [4, 6): pays 2h
        loser = result.group_records[0]
        assert loser.end_time == pytest.approx(6.0)
        assert result.cost == pytest.approx(0.05 * 6.0 * 2 + 0.05 * 2.0 * 2)

    def test_best_checkpoint_wins_recovery(self, two_group_problem):
        problem = two_group_problem
        # a dies at 3 with ckpt at 2; b dies at 5 with ckpts at 2,4
        die3 = SpotPriceTrace([0.0, 3.0], [0.05, 0.9], 400.0)
        die55 = SpotPriceTrace([0.0, 5.5], [0.05, 0.9], 400.0)
        decision = Decision(
            groups=(GroupDecision(0, 0.10, 2.0), GroupDecision(1, 0.10, 2.0)),
            ondemand_index=0,
        )
        h = history_for(problem, [die3, die55])
        result = replay_decision(problem, decision, h, 0.0)
        assert result.completed_by == "ondemand"
        # b saved 4h: ratio (6-4+0.5)/6 = 5/12 -> od = 5/12*5
        assert result.ondemand_hours == pytest.approx(5 * 5 / 12)
        # recovery starts when the LAST group dies (5.5)
        assert result.makespan == pytest.approx(5.5 + 5 * 5 / 12)


class TestWindow:
    def test_window_banks_progress_of_survivor(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        h = history_for(problem, [flat()])
        out = replay_window(problem, decision, h, 0.0, 3.0)
        assert not out.completed
        rec = out.records[0]
        # wall 3.0: 2h work + 0.5 ckpt + 0.5 work = 2.5 productive; the
        # boundary checkpoint costs 0.5h, so only work reached by wall
        # 2.5 is banked: exactly the 2h prefix.
        assert rec.productive == pytest.approx(2.5)
        assert rec.saved == pytest.approx(2.0)
        assert out.gained_fraction == pytest.approx(2.0 / 6.0)

    def test_window_with_initial_fraction(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(GroupDecision(0, 0.10, 6.0),), ondemand_index=0)
        h = history_for(problem, [flat()])
        out = replay_window(problem, decision, h, 0.0, 10.0, fraction_done=0.5)
        # remaining work 3h, no failures -> completes at t=3
        assert out.completed
        assert out.completion_time == pytest.approx(3.0)

    def test_dead_group_keeps_only_checkpointed(self, one_group_problem):
        problem = one_group_problem
        trace = SpotPriceTrace([0.0, 3.0], [0.05, 0.9], 400.0)
        decision = Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)
        h = history_for(problem, [trace])
        out = replay_window(problem, decision, h, 0.0, 10.0)
        rec = out.records[0]
        assert rec.terminated
        assert rec.saved == pytest.approx(2.0)  # not the 2.5 productive
        assert out.all_dead_at == pytest.approx(3.0)

    def test_empty_window_rejected(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        h = history_for(problem, [flat()])
        with pytest.raises(ConfigurationError):
            replay_window(problem, decision, h, 5.0, 5.0)

    def test_bad_fraction_rejected(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        h = history_for(problem, [flat()])
        with pytest.raises(ConfigurationError):
            replay_window(problem, decision, h, 0.0, 1.0, fraction_done=1.5)


class TestHorizon:
    def test_horizon_covers_slowest_group(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        # total wall = 7.0; horizon = 3*7 + 5 (ondemand)
        assert decision_horizon(problem, decision) == pytest.approx(26.0)

    def test_pure_ondemand_horizon(self, one_group_problem):
        problem = one_group_problem
        decision = Decision(groups=(), ondemand_index=0)
        assert decision_horizon(problem, decision) == 5.0
