"""CLI tests (drive main() in-process, capture stdout)."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestPlan:
    def test_plan_prints_decision(self, capsys):
        code, out = run_cli(
            capsys, "plan", "--app", "BT", "--deadline-factor", "1.5", "--kappa", "2"
        )
        assert code == 0
        assert "expected cost" in out
        assert "fallback:" in out
        assert "bid combinations" in out

    def test_plan_lammps_processes(self, capsys):
        code, out = run_cli(
            capsys, "plan", "--app", "LAMMPS", "--processes", "32", "--kappa", "2"
        )
        assert code == 0
        assert "LAMMPS" in out

    def test_unknown_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["plan", "--app", "EP"])


class TestReplay:
    def test_replay_reports_statistics(self, capsys):
        code, out = run_cli(
            capsys,
            "replay",
            "--app",
            "BT",
            "--samples",
            "30",
            "--kappa",
            "2",
        )
        assert code == 0
        assert "replays" in out and "deadline misses" in out

    def test_persistent_semantics_flag(self, capsys):
        code, out = run_cli(
            capsys,
            "replay",
            "--app",
            "BT",
            "--samples",
            "20",
            "--kappa",
            "2",
            "--semantics",
            "persistent",
        )
        assert code == 0
        assert "persistent" in out


class TestMarkets:
    def test_lists_twelve_markets(self, capsys):
        code, out = run_cli(capsys, "markets", "--days", "3")
        assert code == 0
        assert out.count("us-east-1") == 12


class TestExportAndHistory:
    def test_export_then_reuse(self, capsys, tmp_path):
        path = tmp_path / "hist.json"
        code, out = run_cli(capsys, "export-history", "--out", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.spot-history.v1"
        assert len(doc["markets"]) == 12
        # plan against the exported history
        code, out = run_cli(
            capsys, "plan", "--app", "BT", "--history", str(path), "--kappa", "2"
        )
        assert code == 0
        assert "expected cost" in out


class TestArtifactsVerb:
    def test_stats_then_clear(self, capsys, tmp_path):
        import numpy as np

        from repro.execution.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path)
        store.save("planner", "aa" + "0" * 62, {"x": np.zeros(4)})
        code, out = run_cli(capsys, "artifacts", "--dir", str(tmp_path))
        assert code == 0
        assert "1 artifact(s)" in out
        assert "planner" in out
        code, out = run_cli(capsys, "artifacts", "--dir", str(tmp_path), "--clear")
        assert code == 0
        assert "cleared 1 artifact(s)" in out
        assert "0 artifact(s), 0 bytes" in out

    def test_evict_down_to_max_bytes(self, capsys, tmp_path):
        import numpy as np

        from repro.execution.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path)
        for i in range(3):
            store.save("kernel", f"{i:02x}" + "0" * 62, {"x": np.zeros(16)})
        code, out = run_cli(
            capsys, "artifacts", "--dir", str(tmp_path), "--max-bytes", "0"
        )
        assert code == 0
        assert "evicted 3 artifact(s)" in out

    def test_disabled_store_reports_and_fails(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", "")
        code, out = run_cli(capsys, "artifacts")
        assert code == 1
        assert "disabled" in out
