"""CLI tests (drive main() in-process, capture stdout)."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestPlan:
    def test_plan_prints_decision(self, capsys):
        code, out = run_cli(
            capsys, "plan", "--app", "BT", "--deadline-factor", "1.5", "--kappa", "2"
        )
        assert code == 0
        assert "expected cost" in out
        assert "fallback:" in out
        assert "bid combinations" in out

    def test_plan_lammps_processes(self, capsys):
        code, out = run_cli(
            capsys, "plan", "--app", "LAMMPS", "--processes", "32", "--kappa", "2"
        )
        assert code == 0
        assert "LAMMPS" in out

    def test_unknown_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["plan", "--app", "EP"])


class TestReplay:
    def test_replay_reports_statistics(self, capsys):
        code, out = run_cli(
            capsys,
            "replay",
            "--app",
            "BT",
            "--samples",
            "30",
            "--kappa",
            "2",
        )
        assert code == 0
        assert "replays" in out and "deadline misses" in out

    def test_persistent_semantics_flag(self, capsys):
        code, out = run_cli(
            capsys,
            "replay",
            "--app",
            "BT",
            "--samples",
            "20",
            "--kappa",
            "2",
            "--semantics",
            "persistent",
        )
        assert code == 0
        assert "persistent" in out


class TestMarkets:
    def test_lists_twelve_markets(self, capsys):
        code, out = run_cli(capsys, "markets", "--days", "3")
        assert code == 0
        assert out.count("us-east-1") == 12


class TestExportAndHistory:
    def test_export_then_reuse(self, capsys, tmp_path):
        path = tmp_path / "hist.json"
        code, out = run_cli(capsys, "export-history", "--out", str(path))
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.spot-history.v1"
        assert len(doc["markets"]) == 12
        # plan against the exported history
        code, out = run_cli(
            capsys, "plan", "--app", "BT", "--history", str(path), "--kappa", "2"
        )
        assert code == 0
        assert "expected cost" in out
