"""Correlated-market extension tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.market.correlated import (
    RegionSurge,
    build_correlated_history,
    overlay_price_floor,
    sample_surges,
)
from repro.market.history import MarketKey
from repro.market.trace import SpotPriceTrace


class TestOverlay:
    def test_raises_prices_inside_window(self, step_trace):
        out = overlay_price_floor(step_trace, 1.0, 3.0, 0.9)
        assert out.price_at(2.0) == 0.9
        assert out.price_at(0.5) == 0.10
        assert out.price_at(3.5) == 0.10

    def test_no_op_when_floor_below_prices(self, step_trace):
        out = overlay_price_floor(step_trace, 20.0, 24.0, 0.5)
        assert out == step_trace

    def test_window_clipped_to_trace(self, step_trace):
        out = overlay_price_floor(step_trace, -5.0, 2.0, 0.9)
        assert out.price_at(1.0) == 0.9
        out2 = overlay_price_floor(step_trace, 100.0, 200.0, 0.9)
        assert out2 == step_trace

    def test_preserves_window_bounds(self, step_trace):
        out = overlay_price_floor(step_trace, 1.0, 3.0, 0.9)
        assert out.start_time == step_trace.start_time
        assert out.end_time == step_trace.end_time

    def test_partial_overlap_of_segment_boundary(self, step_trace):
        # overlay [4, 6): covers end of 0.10 segment and start of 0.50 one
        out = overlay_price_floor(step_trace, 4.0, 6.0, 0.3)
        assert out.price_at(4.5) == 0.3
        assert out.price_at(5.5) == 0.5  # 0.50 > floor stays
        assert out.price_at(6.5) == 0.5

    def test_empty_window_rejected(self, step_trace):
        with pytest.raises(ConfigurationError):
            overlay_price_floor(step_trace, 3.0, 3.0, 1.0)

    def test_mean_price_never_decreases(self, step_trace):
        out = overlay_price_floor(step_trace, 2.0, 22.0, 0.2)
        assert out.mean_price() >= step_trace.mean_price()


class TestSurges:
    def test_reproducible(self):
        a = sample_surges(500.0, np.random.default_rng(1))
        b = sample_surges(500.0, np.random.default_rng(1))
        assert a == b

    def test_within_window(self):
        surges = sample_surges(100.0, np.random.default_rng(2), rate_per_hour=0.2)
        for s in surges:
            assert 0.0 <= s.start <= s.end <= 100.0
            assert s.severity > 0

    def test_sorted_by_start(self):
        surges = sample_surges(500.0, np.random.default_rng(3), rate_per_hour=0.1)
        starts = [s.start for s in surges]
        assert starts == sorted(starts)


class TestCorrelatedHistory:
    def test_rho_zero_equals_presets_marginals(self):
        """rho=0: no surge joins, traces equal the independent generator's."""
        h = build_correlated_history(240.0, seed=5, correlation=0.0)
        assert len(h) == 12
        # No overlay applied: every market is exactly its base generator
        # output (same derived seed as corr-market stream).
        for key, trace in h.items():
            assert trace.duration == pytest.approx(240.0)

    def test_rho_one_floors_every_market_during_surges(self):
        surges = sample_surges(
            720.0,
            np.random.default_rng(
                __import__("repro.sim.rng", fromlist=["derive_seed"]).derive_seed(
                    5, "region-surges"
                )
            ),
            rate_per_hour=0.02,
        )
        if not surges:
            pytest.skip("no surges drawn for this seed")
        h = build_correlated_history(720.0, seed=5, correlation=1.0)
        surge = max(surges, key=lambda s: s.duration)
        mid = surge.start + surge.duration / 2
        from repro.market.presets import market_params

        for key, trace in h.items():
            params = market_params(key.instance_type, key.zone)
            assert trace.price_at(mid) >= surge.severity * params.base_price - 1e-12

    def test_higher_rho_higher_mean_prices(self):
        lo = build_correlated_history(720.0, seed=5, correlation=0.0)
        hi = build_correlated_history(720.0, seed=5, correlation=1.0)
        lo_mean = np.mean([t.mean_price() for _k, t in lo.items()])
        hi_mean = np.mean([t.mean_price() for _k, t in hi.items()])
        assert hi_mean >= lo_mean

    def test_invalid_correlation(self):
        with pytest.raises(ConfigurationError):
            build_correlated_history(100.0, seed=1, correlation=1.5)
