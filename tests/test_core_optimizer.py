"""SompiOptimizer facade tests."""

import pytest

from repro.config import SompiConfig
from repro.core.optimizer import SompiOptimizer, build_failure_models
from repro.core.problem import Problem
from repro.errors import InfeasibleError
from repro.experiments.env import LOOSE_DEADLINE_FACTOR, TIGHT_DEADLINE_FACTOR


class TestPlanning:
    def test_loose_plan_uses_spot_and_saves(self, small_env):
        problem = small_env.problem("BT", LOOSE_DEADLINE_FACTOR)
        plan = small_env.sompi_plan(problem)
        assert plan.used_spot
        baseline = small_env.baseline_cost(small_env.app("BT"))
        assert plan.expectation.cost < baseline
        assert plan.expectation.time <= problem.deadline + 1e-9

    def test_tight_plan_still_feasible(self, small_env):
        problem = small_env.problem("BT", TIGHT_DEADLINE_FACTOR)
        plan = small_env.sompi_plan(problem)
        assert plan.expectation.time <= problem.deadline + 1e-9

    def test_plan_respects_kappa(self, small_env):
        problem = small_env.problem("BT", LOOSE_DEADLINE_FACTOR)
        plan = small_env.sompi_plan(problem)
        assert len(plan.decision.groups) <= small_env.config.kappa

    def test_impossible_deadline_raises(self, small_env):
        with pytest.raises(InfeasibleError):
            problem = small_env.problem("BT", deadline_hours=0.5)
            small_env.sompi_plan(problem)

    def test_greedy_strategy_works(self, small_env):
        problem = small_env.problem("BT", LOOSE_DEADLINE_FACTOR)
        cfg = small_env.config.with_(subset_strategy="greedy")
        plan = small_env.sompi_plan(problem, cfg)
        assert plan.expectation.time <= problem.deadline + 1e-9
        exhaustive = small_env.sompi_plan(problem)
        assert plan.expectation.cost <= exhaustive.expectation.cost * 1.25

    def test_describe_mentions_cost_and_deadline(self, small_env):
        problem = small_env.problem("BT", LOOSE_DEADLINE_FACTOR)
        plan = small_env.sompi_plan(problem)
        text = plan.describe()
        assert "expected cost" in text and "deadline" in text

    def test_loose_cheaper_or_equal_to_tight(self, small_env):
        loose = small_env.sompi_plan(small_env.problem("BT", LOOSE_DEADLINE_FACTOR))
        tight = small_env.sompi_plan(small_env.problem("BT", TIGHT_DEADLINE_FACTOR))
        assert loose.expectation.cost <= tight.expectation.cost + 1e-6


class TestBuildModels:
    def test_one_model_per_group(self, small_env):
        problem = small_env.problem("BT", LOOSE_DEADLINE_FACTOR)
        models = build_failure_models(problem, small_env.training_history())
        assert set(models) == {g.key for g in problem.groups}

    def test_from_history_classmethod(self, small_env):
        problem = small_env.problem("FT", LOOSE_DEADLINE_FACTOR)
        opt = SompiOptimizer.from_history(
            problem, small_env.training_history(), small_env.config
        )
        plan = opt.plan()
        assert plan.expectation.cost > 0
