"""S3 store, on-demand instance and provider facade tests."""

import pytest

from repro.cloud.billing import HOURLY
from repro.cloud.instance_types import get_instance_type
from repro.cloud.ondemand import OnDemandInstance
from repro.cloud.provider import CloudProvider
from repro.cloud.s3 import S3Store
from repro.errors import CheckpointError, ConfigurationError
from repro.market.history import MarketKey, SpotPriceHistory
from repro.market.presets import build_history
from repro.units import BYTES_PER_GB


class TestS3:
    def test_put_get_delete(self):
        s3 = S3Store()
        s3.put("ckpt/1", 10 * BYTES_PER_GB, now=0.0)
        assert s3.get("ckpt/1").size_bytes == 10 * BYTES_PER_GB
        s3.delete("ckpt/1", now=5.0)
        with pytest.raises(CheckpointError):
            s3.get("ckpt/1")

    def test_overwrite_stops_old_accrual(self):
        s3 = S3Store()
        s3.put("k", BYTES_PER_GB, now=0.0)
        s3.put("k", BYTES_PER_GB, now=10.0)
        # 10 GB-hours from the old object + 10 from the new one at t=20.
        cost = s3.storage_cost(now=20.0)
        assert cost == pytest.approx(20 * 0.03 / 730.0)

    def test_storage_cost_is_tiny_relative_to_compute(self):
        """The paper's claim: checkpoint storage < 0.1% of the bill."""
        s3 = S3Store()
        s3.put("ckpt", 45 * BYTES_PER_GB, now=0.0)  # BT-sized image
        storage = s3.storage_cost(now=24.0)
        compute = 24.0 * 0.044 * 128  # one day of 128 m1.smalls
        assert storage / compute < 0.001

    def test_transfer_hours(self):
        s3 = S3Store(bandwidth_mbps=50.0)
        secs = s3.transfer_hours(50.0 * 1024**2) * 3600.0
        assert secs == pytest.approx(1.0)

    def test_missing_object(self):
        with pytest.raises(CheckpointError):
            S3Store().get("nope")


class TestOnDemand:
    def test_cost_scales_with_count_and_time(self):
        inst = OnDemandInstance(get_instance_type("c3.xlarge"))
        assert inst.cost(2.0, count=32) == pytest.approx(2.0 * 0.210 * 32)

    def test_hourly_billing_policy(self):
        inst = OnDemandInstance(get_instance_type("m1.small"), billing=HOURLY)
        assert inst.cost(1.5) == pytest.approx(2 * 0.044)

    def test_negative_count_rejected(self):
        inst = OnDemandInstance(get_instance_type("m1.small"))
        with pytest.raises(ValueError):
            inst.cost(1.0, count=-1)


class TestProvider:
    @pytest.fixture
    def provider(self) -> CloudProvider:
        return CloudProvider(history=build_history(48.0, seed=2))

    def test_markets_enumerated(self, provider):
        assert len(provider.markets()) == 12

    def test_spot_driver(self, provider):
        key = MarketKey("m1.medium", "us-east-1b")
        run = provider.spot(key).run(bid=99.0, requested_at=0.0)
        assert run.launched

    def test_validate_market(self, provider):
        key = MarketKey("m1.medium", "us-east-1a")
        assert provider.validate_market(key) == key

    def test_validate_rejects_unknown_zone(self, provider):
        with pytest.raises(ConfigurationError):
            provider.validate_market(MarketKey("m1.medium", "eu-west-9z"))

    def test_validate_rejects_missing_history(self):
        provider = CloudProvider(history=SpotPriceHistory())
        with pytest.raises(ConfigurationError):
            provider.validate_market(MarketKey("m1.medium", "us-east-1a"))
