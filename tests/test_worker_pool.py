"""Persistent shared worker pool (DESIGN.md §12).

The contracts under test, in the order ISSUE 8 states them: parallel
``run_backtest`` is bit-identical to serial at any job count, sequential
Monte-Carlo calls reuse one executor and one shm registry entry instead
of respawning per call, the pool works under the ``spawn`` start method
(module-level entry points only), and ``close()`` leaves no worker
processes or shared-memory segments behind.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro import obs
from repro.cloud.instance_types import get_instance_type
from repro.cloud.zones import Zone
from repro.config import SompiConfig
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.errors import ConfigurationError
from repro.backtest import build_manifest, run_backtest
from repro.execution import shm_pool
from repro.execution.montecarlo import replay_many
from repro.execution.pool import (
    WorkerPool,
    close_shared_pool,
    default_max_workers,
)
from repro.execution.shm_pool import shared_trace_handle
from repro.experiments.env import ExperimentEnv
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


def _mini_env(seed: int = 11) -> ExperimentEnv:
    return ExperimentEnv.paper_default(
        seed=seed,
        history_days=21.0,
        train_days=7.0,
        config=SompiConfig(kappa=2, bid_levels=5),
        instance_types=("m1.medium", "cc2.8xlarge"),
        zones=(Zone("us-east-1a"), Zone("us-east-1b")),
    )


def _mini_manifest(env: ExperimentEnv):
    return build_manifest(
        env,
        n_windows=2,
        plan_hours=5 * 24.0,
        holdout_hours=3 * 24.0,
        apps=("BT",),
        deadline_factors=(("loose", 1.5),),
        n_samples=30,
    )


@pytest.fixture
def spiky_problem():
    g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=20.0)
    times, prices = [], []
    for k in range(60):
        times += [12.0 * k, 12.0 * k + 9.0]
        prices += [0.05, 0.90]
    h = SpotPriceHistory()
    h.add(g.key, SpotPriceTrace(times, prices, 732.0))
    return problem, h


def _decision():
    return Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)


# ----------------------------------------------------------------------
# Serial == parallel bit-identity for the backtest grid
# ----------------------------------------------------------------------
class TestBacktestParallelIdentity:
    def test_jobs_match_serial_bit_identically(self):
        env = _mini_env()
        manifest = _mini_manifest(env)
        serial = run_backtest(env, manifest, jobs=1)
        for jobs in (2, 8):
            parallel = run_backtest(_mini_env(), manifest, jobs=jobs)
            # Frozen dataclasses of floats/tuples: == is bit-identity
            # (any drifted float64 breaks equality).
            assert parallel.results == serial.results

    def test_parallel_emits_the_serial_event_stream(self):
        env = _mini_env()
        manifest = _mini_manifest(env)
        metrics = obs.get_metrics()
        before = metrics.get("backtest.cells")
        run_backtest(env, manifest, jobs=2)
        cells = len(manifest.windows) * len(manifest.apps) * len(
            manifest.deadline_factors
        )
        assert metrics.get("backtest.cells") == before + cells


# ----------------------------------------------------------------------
# Pool reuse across sequential Monte-Carlo calls
# ----------------------------------------------------------------------
class TestSequentialReuse:
    def test_one_spawn_many_calls_and_shm_registry_hits(self, spiky_problem):
        problem, h = spiky_problem
        d = _decision()
        close_shared_pool()
        shm_pool.close_trace_pools()
        metrics = obs.get_metrics()
        spawns0 = metrics.get("pool.spawns")
        first = replay_many(problem, d, h, 12, np.random.default_rng(7), jobs=2)
        assert metrics.get("pool.spawns") == spawns0 + 1
        hits0 = metrics.get("cache.shm_pool_hits")
        warm0 = metrics.get("pool.warm_hits")
        second = replay_many(problem, d, h, 12, np.random.default_rng(7), jobs=2)
        # Same process, same history content: no new executor, no new
        # shm blocks — the registry and the shared pool both hit warm.
        assert metrics.get("pool.spawns") == spawns0 + 1
        assert metrics.get("cache.shm_pool_hits") == hits0 + 1
        assert metrics.get("pool.warm_hits") == warm0 + 1
        assert first == second

    def test_shared_grows_but_never_shrinks(self):
        close_shared_pool()
        pool = WorkerPool.shared(1)
        assert pool.max_workers == 1
        grown = WorkerPool.shared(2)
        assert grown.max_workers == 2
        assert WorkerPool.shared(1) is grown
        close_shared_pool()

    def test_clear_shared_caches_drops_the_pool(self, spiky_problem):
        from repro.core.two_level import clear_shared_caches

        problem, h = spiky_problem
        replay_many(problem, _decision(), h, 12,
                    np.random.default_rng(7), jobs=2)
        pool = WorkerPool.shared()
        assert pool.spawned
        clear_shared_caches()
        assert not pool.spawned
        assert WorkerPool.shared() is not pool

    def test_min_workers_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)
        with pytest.raises(ConfigurationError):
            WorkerPool.shared(0)

    def test_default_max_workers_bounds(self):
        assert 1 <= default_max_workers() <= 8


# ----------------------------------------------------------------------
# Start-method portability
# ----------------------------------------------------------------------
class TestSpawnSmoke:
    def test_spawn_context_pool_round_trips(self):
        pool = WorkerPool(1, mp_context=multiprocessing.get_context("spawn"))
        try:
            pid = pool.submit(os.getpid).result()
            assert pid != os.getpid()
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Clean teardown
# ----------------------------------------------------------------------
class TestTeardown:
    def test_close_reaps_every_worker(self):
        pool = WorkerPool(2)
        pids = {pool.submit(os.getpid).result() for _ in range(4)}
        assert pool.spawned
        pool.close()
        assert not pool.spawned
        for pid in pids:
            # shutdown(wait=True) joins and reaps; a surviving (or
            # zombie) worker would still answer signal 0.
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_close_trace_pools_unlinks_segments(self, spiky_problem):
        from multiprocessing import shared_memory

        _, h = spiky_problem
        shm_pool.close_trace_pools()
        handle = shared_trace_handle(h)
        names = [entry[2] for entry in handle.entries]
        assert names
        shm_pool.close_trace_pools()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent_and_resubmittable(self):
        pool = WorkerPool(1)
        assert pool.submit(os.getpid).result() > 0
        pool.close()
        pool.close()
        # A closed pool lazily respawns on the next submit.
        assert pool.submit(os.getpid).result() > 0
        pool.close()
