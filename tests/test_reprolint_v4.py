"""Tests for reprolint v4: interprocedural summaries & lineage rules.

Covers the fixpoint summary engine (multi-hop R003 dimension flow, SCC
convergence on call cycles, per-SCC cache replay), the attribute-element
dataflow (``self.x`` facts joined across methods), the three new rules
R014–R016 with positive and negative fixtures, the ``wrap-sorted``
autofix, the reworked ``--changed`` scope (whole tree analysed, reporting
filtered through the import-graph closure), and meta-tests that mutate
copies of the *real* ``repro.execution`` / ``repro.backtest`` modules and
assert each rule fires on the exact broken line.
"""

import textwrap
from pathlib import Path

from repro.analysis import get_rules, run_lint
from repro.analysis.fixers import fix_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
EXECUTION = REPO_ROOT / "src" / "repro" / "execution"
BACKTEST = REPO_ROOT / "src" / "repro" / "backtest"


def lint_project(tmp_path, files, select=None, cache_path=None):
    """Write every ``relpath -> source`` pair and lint them together."""
    paths = []
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text))
        paths.append(p)
    return run_lint(
        paths, root=tmp_path, rules=get_rules(select), cache_path=cache_path
    )


def rule_ids(result):
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------------
# Summary fixpoint: multi-hop dimension flow and SCC convergence
# ----------------------------------------------------------------------
class TestSummaryFixpoint:
    def test_dimension_flows_through_two_hops(self, tmp_path):
        # Before v4, R003 resolved exactly one caller->callee hop; the
        # inner helper's dimension was invisible through a relay.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def _raw(x_hours):
                        return x_hours

                    def relay(x_hours):
                        return _raw(x_hours)

                    def total(cost_usd):
                        return cost_usd + relay(1.0)
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)

    def test_dimension_flows_across_modules(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/units.py": """
                    def _raw(x_hours):
                        return x_hours

                    def span(x_hours):
                        return _raw(x_hours)
                    """,
                "src/repro/core/use.py": """
                    from repro.core.units import span

                    def total(cost_usd):
                        return cost_usd + span(1.0)
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)
        assert result.findings[0].path.endswith("use.py")

    def test_three_cycle_scc_converges(self, tmp_path):
        # hop_a -> hop_b -> hop_c -> hop_a: the SCC has no topological
        # order, so the (monotone) sink-param facts iterate within the
        # component until every member knows `seed` reaches the
        # derivation — only then can the tainted call in run() fire.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/cycle.py": """
                    import time

                    import numpy as np

                    def hop_a(seed, n):
                        if n == 0:
                            return np.random.default_rng(seed)
                        return hop_b(seed, n - 1)

                    def hop_b(seed, n):
                        return hop_c(seed, n)

                    def hop_c(seed, n):
                        return hop_a(seed, n)

                    def run():
                        return hop_b(time.time(), 3)
                    """,
            },
            select=["R014"],
        )
        assert rule_ids(result) == ["R014"]
        assert "in run()" in result.findings[0].message
        stats = result.summary_stats
        assert stats is not None
        assert stats["recomputed"] == 4
        # hop_a/hop_b/hop_c collapse into one SCC; run is its own.
        assert stats["sccs"] >= 2

    def test_same_dimension_chain_is_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def _raw(x_usd):
                        return x_usd

                    def relay(x_usd):
                        return _raw(x_usd)

                    def total(cost_usd):
                        return cost_usd + relay(1.0)
                    """,
            },
            select=["R003"],
        )
        assert result.findings == []

    def test_warm_run_replays_unchanged_sccs(self, tmp_path):
        files = {
            "src/repro/core/a.py": """
                def one_hours(x_hours):
                    return x_hours

                def two_hours(x_hours):
                    return one_hours(x_hours)
                """,
            "src/repro/core/b.py": """
                from repro.core.a import two_hours

                def total_hours(x_hours):
                    return two_hours(x_hours)
                """,
        }
        cache = tmp_path / "cache.json"
        cold = lint_project(tmp_path, files, select=["R003"], cache_path=cache)
        assert cold.summary_stats["recomputed"] == 3
        assert cold.summary_stats["replayed"] == 0
        # Edit only b: a's SCCs replay from the cache, b's recompute.
        b = tmp_path / "src/repro/core/b.py"
        b.write_text(b.read_text() + "\n# touched\n")
        warm = run_lint(
            [tmp_path / rel for rel in files],
            root=tmp_path,
            rules=get_rules(["R003"]),
            cache_path=cache,
        )
        assert warm.summary_stats["replayed"] == 2
        assert warm.summary_stats["recomputed"] == 1


# ----------------------------------------------------------------------
# Attribute-element dataflow: self.x facts across methods
# ----------------------------------------------------------------------
class TestAttributeFacts:
    def test_init_write_feeds_method_read(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    class Meter:
                        def __init__(self, cost_usd):
                            self.cost_usd = cost_usd

                        def drift(self, span_hours):
                            return self.cost_usd + span_hours
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)

    def test_conflicting_writers_drop_the_fact(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    class Meter:
                        def __init__(self, cost_usd):
                            self.value = cost_usd

                        def rebase(self, span_hours):
                            self.value = span_hours

                        def drift(self, span_hours):
                            return self.value + span_hours
                    """,
            },
            select=["R003"],
        )
        assert result.findings == []

    def test_container_field_elements(self, tmp_path):
        # __init__ packs mixed dimensions into a field; a method that
        # unpacks and adds them drifts.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    class Box:
                        def __init__(self, cost_usd, span_hours):
                            self.pair = (cost_usd, span_hours)

                        def mix(self):
                            return self.pair[0] + self.pair[1]
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)

    def test_mutator_method_invalidates_element_facts(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    class Box:
                        def __init__(self, cost_usd):
                            self.items = [cost_usd]

                        def grow(self, extras):
                            self.items.extend(extras)

                        def mix(self, span_hours):
                            return self.items[0] + span_hours
                    """,
            },
            select=["R003"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R014 — rng seed lineage
# ----------------------------------------------------------------------
class TestR014RngLineage:
    def test_naked_default_rng(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import numpy as np

                    def draw():
                        return np.random.default_rng()
                    """,
            },
            select=["R014"],
        )
        assert rule_ids(result) == ["R014"]
        assert "in draw()" in result.findings[0].message

    def test_entropy_seed_through_two_hops(self, tmp_path):
        # Both halves of the lineage live in other functions: the
        # entropy source is two calls away, and the sink is reached
        # through a forwarding parameter two calls deep.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import time

                    import numpy as np

                    def _now():
                        return time.time()

                    def stamp():
                        return _now()

                    def _derive(seed):
                        return np.random.default_rng(seed)

                    def make_gen(seed):
                        return _derive(seed)

                    def run():
                        return make_gen(stamp())
                    """,
            },
            select=["R014"],
        )
        assert rule_ids(result) == ["R014"]
        finding = result.findings[0]
        assert "in run()" in finding.message
        assert "root seed" in finding.message

    def test_explicit_seed_through_chain_is_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import numpy as np

                    def _derive(seed):
                        return np.random.default_rng(seed)

                    def make_gen(seed):
                        return _derive(seed)

                    def run(root_seed):
                        return make_gen(root_seed)
                    """,
            },
            select=["R014"],
        )
        assert result.findings == []

    def test_entropy_instance_field_taints_seed(self, tmp_path):
        # Stored in one method, consumed as a seed in another: the
        # per-class field facts carry the taint between them.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import time

                    import numpy as np

                    class Sampler:
                        def __init__(self):
                            self._salt = time.time()

                        def gen(self):
                            return np.random.default_rng(self._salt)
                    """,
            },
            select=["R014"],
        )
        assert rule_ids(result) == ["R014"]
        assert "Sampler.gen()" in result.findings[0].message

    def test_param_seeded_instance_field_is_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import numpy as np

                    class Sampler:
                        def __init__(self, seed):
                            self._seed = seed

                        def gen(self):
                            return np.random.default_rng(self._seed)
                    """,
            },
            select=["R014"],
        )
        assert result.findings == []

    def test_module_level_generator_state(self, tmp_path):
        # Even a *seeded* module-level generator is flagged: it is a
        # hidden stream whose consumption order crosses importers.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import numpy as np

                    _RNG = np.random.default_rng(1234)
                    """,
            },
            select=["R014"],
        )
        assert rule_ids(result) == ["R014"]
        assert "hidden stream" in result.findings[0].message

    def test_outside_seeded_packages_is_quiet(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/plots/mod.py": """
                    import numpy as np

                    def draw():
                        return np.random.default_rng()
                    """,
            },
            select=["R014"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R015 — order-sensitive float reductions
# ----------------------------------------------------------------------
class TestR015OrderedReduction:
    def test_sum_over_set_comprehension(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(costs_usd):
                        return sum({c for c in costs_usd})
                    """,
            },
            select=["R015"],
        )
        assert rule_ids(result) == ["R015"]
        finding = result.findings[0]
        assert "not associative" in finding.message
        assert finding.fix is not None
        assert finding.fix["op"] == "wrap-sorted"

    def test_sum_over_bound_set(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(costs_usd):
                        unique = set(costs_usd)
                        return sum(unique)
                    """,
            },
            select=["R015"],
        )
        assert rule_ids(result) == ["R015"]
        # A bare name cannot be wrapped mechanically at the fold site.
        assert result.findings[0].fix is None

    def test_sum_over_filesystem_enumeration(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import os

                    def total(d):
                        return sum(os.listdir(d))
                    """,
            },
            select=["R015"],
        )
        assert rule_ids(result) == ["R015"]
        assert "OS-defined" in result.findings[0].message
        # Possibly-lazy enumerations never get the autofix hint.
        assert result.findings[0].fix is None

    def test_sum_over_dict_view(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(costs_usd):
                        by_key = {k: c for k, c in enumerate(costs_usd)}
                        return sum(by_key.values())
                    """,
            },
            select=["R015"],
        )
        assert rule_ids(result) == ["R015"]
        assert "insertion order" in result.findings[0].message

    def test_reduce_second_argument(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    from functools import reduce
                    from operator import add

                    def total(costs_usd):
                        return reduce(add, set(costs_usd))
                    """,
            },
            select=["R015"],
        )
        assert rule_ids(result) == ["R015"]

    def test_sorted_clears_the_fact(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(costs_usd):
                        unique = sorted(set(costs_usd))
                        return sum(unique) + sum(sorted({c for c in costs_usd}))
                    """,
            },
            select=["R015"],
        )
        assert result.findings == []

    def test_list_freezes_but_does_not_launder(self, tmp_path):
        # list(...) pins the *current* nondeterministic order; only
        # sorted(...) makes the fold order reproducible.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(costs_usd):
                        return sum(list(set(costs_usd)))
                    """,
            },
            select=["R015"],
        )
        assert rule_ids(result) == ["R015"]

    def test_fsum_is_exempt(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    import math

                    def total(costs_usd):
                        return math.fsum({c for c in costs_usd})
                    """,
            },
            select=["R015"],
        )
        assert result.findings == []

    def test_augassign_invalidates(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(costs_usd, extras):
                        unique = set(costs_usd)
                        unique |= extras
                        return sum(unique)
                    """,
            },
            select=["R015"],
        )
        assert result.findings == []

    def test_plain_list_is_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(costs_usd):
                        return sum(costs_usd)
                    """,
            },
            select=["R015"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# wrap-sorted autofix
# ----------------------------------------------------------------------
class TestWrapSortedFix:
    def _fix(self, tmp_path, source):
        p = tmp_path / "src/repro/core/mod.py"
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(source))
        report = fix_paths(
            [p], root=tmp_path, rules=get_rules(["R015"]),
            baseline_factory=lambda: None,
        )
        return report, p.read_text()

    def test_wraps_one_line_set(self, tmp_path):
        report, text = self._fix(
            tmp_path,
            """
            def total(costs_usd):
                return sum({c for c in costs_usd})
            """,
        )
        assert len(report.applied) == 1
        assert "sum(sorted({c for c in costs_usd}))" in text
        assert report.remaining == 0

    def test_wraps_dict_view(self, tmp_path):
        report, text = self._fix(
            tmp_path,
            """
            def total(costs_usd):
                by_key = dict(enumerate(costs_usd))
                return sum(by_key.values())
            """,
        )
        assert len(report.applied) == 1
        assert "sum(sorted(by_key.values()))" in text

    def test_fix_is_idempotent(self, tmp_path):
        report, text = self._fix(
            tmp_path,
            """
            def total(costs_usd):
                return sum({c for c in costs_usd})
            """,
        )
        p = tmp_path / "src/repro/core/mod.py"
        second = fix_paths(
            [p], root=tmp_path, rules=get_rules(["R015"]),
            baseline_factory=lambda: None,
        )
        assert second.applied == []
        assert p.read_text() == text


# ----------------------------------------------------------------------
# R016 — fail-open contracts
# ----------------------------------------------------------------------
class TestR016FailOpen:
    def test_unguarded_io_in_marked_function(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": '''
                    def load(path):
                        """Read the cache, fail-open on a missing file."""
                        with open(path) as fh:
                            return fh.read()
                    ''',
            },
            select=["R016"],
        )
        assert rule_ids(result) == ["R016"]
        finding = result.findings[0]
        assert "load() documents a fail-open contract" in finding.message
        assert "OSError" in finding.message

    def test_guarded_io_is_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": '''
                    def load(path):
                        """Read the cache, fail-open on a missing file."""
                        try:
                            with open(path) as fh:
                                return fh.read()
                        except OSError:
                            return None
                    ''',
            },
            select=["R016"],
        )
        assert result.findings == []

    def test_narrow_handler_still_leaks(self, tmp_path):
        # except FileNotFoundError does not prove the general OSError
        # (PermissionError, a torn mount) cannot escape.
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": '''
                    def load(path):
                        """Read the cache, fail-open on a missing file."""
                        try:
                            with open(path) as fh:
                                return fh.read()
                        except FileNotFoundError:
                            return None
                    ''',
            },
            select=["R016"],
        )
        assert rule_ids(result) == ["R016"]

    def test_bare_reraise_leaks(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": '''
                    def load(path):
                        """Read the cache, fail-open on a missing file."""
                        try:
                            with open(path) as fh:
                                return fh.read()
                        except OSError:
                            raise
                    ''',
            },
            select=["R016"],
        )
        assert rule_ids(result) == ["R016"]
        assert "bare raise" in result.findings[0].message

    def test_callee_raise_crosses_function_hop(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": '''
                    def _probe(path):
                        with open(path) as fh:
                            return fh.read()

                    def load(path):
                        """Read the cache, fail-open on a missing file."""
                        return _probe(path)
                    ''',
            },
            select=["R016"],
        )
        assert rule_ids(result) == ["R016"]
        assert "_probe" in result.findings[0].message

    def test_worker_raise_surfaces_at_the_gather(self, tmp_path):
        # The submitted callable's escaping OSError resurfaces in the
        # parent when results are gathered: the submit site is flagged.
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": '''
                    from multiprocessing.shared_memory import SharedMemory

                    def _job(name):
                        shm = SharedMemory(name=name)
                        return bytes(shm.buf)

                    def gather(pool, names):
                        """Ship blocks by name; fail-open on a lost segment."""
                        futures = [pool.submit(_job, n) for n in names]
                        return [f.result() for f in futures]
                    ''',
            },
            select=["R016"],
        )
        assert rule_ids(result) == ["R016"]

    def test_unmarked_function_is_quiet(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": '''
                    def load(path):
                        """Read the cache (caller handles errors)."""
                        with open(path) as fh:
                            return fh.read()
                    ''',
            },
            select=["R016"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# --changed scope: whole-tree analysis, filtered reporting
# ----------------------------------------------------------------------
class TestChangedScope:
    FILES = {
        "src/repro/core/units.py": """
            def _raw(x_hours):
                return x_hours

            def span(x_hours):
                return _raw(x_hours)
            """,
        "src/repro/core/use.py": """
            from repro.core.units import span

            def total(cost_usd):
                return cost_usd + span(1.0)
            """,
        "src/repro/core/other.py": """
            import random
            """,
    }

    def _lint(self, tmp_path, changed_scope):
        paths = []
        for rel, text in self.FILES.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(textwrap.dedent(text))
            paths.append(p)
        return run_lint(
            paths, root=tmp_path, rules=get_rules(["R001", "R003"]),
            changed_scope=changed_scope,
        )

    def test_edit_to_callee_reports_caller_drift(self, tmp_path):
        # Only units.py "changed", but the R003 drift it causes lives in
        # use.py — the import-graph closure keeps that finding.
        result = self._lint(tmp_path, {"src/repro/core/units.py"})
        assert rule_ids(result) == ["R003"]
        assert result.findings[0].path == "src/repro/core/use.py"
        # The unrelated R001 hit in other.py is out of scope.
        assert result.lint_scope is not None
        assert "src/repro/core/other.py" not in result.lint_scope

    def test_unrelated_change_drops_cross_file_findings(self, tmp_path):
        result = self._lint(tmp_path, {"src/repro/core/other.py"})
        assert rule_ids(result) == ["R001"]
        assert result.findings[0].path == "src/repro/core/other.py"

    def test_unscoped_run_reports_everything(self, tmp_path):
        result = self._lint(tmp_path, None)
        assert sorted(set(rule_ids(result))) == ["R001", "R003"]


# ----------------------------------------------------------------------
# Meta: break the real product code, watch the v4 rules catch it
# ----------------------------------------------------------------------
class TestMetaRealCode:
    """Copy real modules into a tempdir, mutate one invariant, assert the
    matching rule fires on the mutated line.  The ``assert old in text``
    guards keep these honest: if the real code is refactored the test
    fails loudly instead of silently mutating nothing."""

    MODULES = {
        "src/repro/execution/pool.py": EXECUTION / "pool.py",
        "src/repro/execution/shm_pool.py": EXECUTION / "shm_pool.py",
        "src/repro/execution/montecarlo.py": EXECUTION / "montecarlo.py",
        "src/repro/backtest/harness.py": BACKTEST / "harness.py",
    }

    def _copy(self, tmp_path, mutations=None):
        paths = []
        texts = {}
        for rel, src in self.MODULES.items():
            text = src.read_text()
            for old, new in (mutations or {}).get(rel, ()):
                assert old in text, f"{rel}: mutation anchor gone: {old!r}"
                text = text.replace(old, new, 1)
            dest = tmp_path / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(text)
            paths.append(dest)
            texts[rel] = text
        return paths, texts

    def _lint(self, tmp_path, paths, select):
        return run_lint(paths, root=tmp_path, rules=get_rules(select))

    @staticmethod
    def _line_of(text, needle):
        for i, line in enumerate(text.splitlines(), start=1):
            if needle in line:
                return i
        raise AssertionError(f"{needle!r} not found")

    def test_unmutated_copies_are_clean(self, tmp_path):
        paths, _ = self._copy(tmp_path)
        result = self._lint(tmp_path, paths, ["R014", "R015", "R016"])
        assert result.findings == []

    def test_unguarding_mc_gather_fires_r016(self, tmp_path):
        # _replay_starts documents its fail-open shm fallback; narrowing
        # the recovery handler lets the workers' OSError escape again.
        rel = "src/repro/execution/montecarlo.py"
        mutations = {
            rel: [(
                "            except OSError:\n"
                "                # A worker lost the segment between",
                "            except ValueError:\n"
                "                # A worker lost the segment between",
            )],
        }
        paths, texts = self._copy(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R016"])
        assert result.findings, "unguarded shm gather must fire R016"
        assert {f.rule for f in result.findings} == {"R016"}
        assert all(f.path == rel for f in result.findings)
        assert any(
            "_replay_starts() documents a fail-open contract" in f.message
            for f in result.findings
        )
        lines = {f.line for f in result.findings}
        assert self._line_of(
            texts[rel], "pool.submit("
        ) in lines

    def test_unguarding_backtest_gather_fires_r016(self, tmp_path):
        # run_backtest's serial-recompute fallback: catching only the
        # FileNotFoundError subclass leaves the general OSError escaping.
        rel = "src/repro/backtest/harness.py"
        mutations = {
            rel: [(
                "        except OSError:\n"
                "            # A worker lost the shm segment between",
                "        except FileNotFoundError:\n"
                "            # A worker lost the shm segment between",
            )],
        }
        paths, texts = self._copy(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R016"])
        assert result.findings, "narrowed backtest gather must fire R016"
        assert {f.rule for f in result.findings} == {"R016"}
        assert all(f.path == rel for f in result.findings)
        assert any(
            "run_backtest() documents a fail-open contract" in f.message
            for f in result.findings
        )
        lines = {f.line for f in result.findings}
        assert self._line_of(texts[rel], "pool.run_ordered(") in lines

    def test_module_level_generator_fires_r014(self, tmp_path):
        rel = "src/repro/execution/montecarlo.py"
        anchor = (
            "from .shm_pool import SharedHistoryHandle, attach_history, "
            "shared_trace_handle"
        )
        inserted = "_FALLBACK_RNG = np.random.default_rng()"
        mutations = {rel: [(anchor, anchor + "\n\n" + inserted)]}
        paths, texts = self._copy(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R014"])
        assert result.findings, "module-level generator must fire R014"
        assert {f.rule for f in result.findings} == {"R014"}
        assert self._line_of(texts[rel], inserted) in {
            f.line for f in result.findings
        }

    def test_set_fold_fires_r015_with_fix(self, tmp_path):
        rel = "src/repro/execution/montecarlo.py"
        anchor = "        chunks = np.array_split(starts, n_jobs)"
        inserted = "        _spread = sum({float(c.sum()) for c in chunks})"
        mutations = {rel: [(anchor, anchor + "\n" + inserted)]}
        paths, texts = self._copy(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R015"])
        assert rule_ids(result) == ["R015"]
        finding = result.findings[0]
        assert finding.path == rel
        assert finding.line == self._line_of(texts[rel], inserted.strip())
        assert finding.fix is not None
        assert finding.fix["op"] == "wrap-sorted"
