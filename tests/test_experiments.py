"""Experiment-module tests: each reproduced artifact has the paper's shape.

These run on the reduced ``small_env`` where possible and on quick
sampling everywhere, so the whole file stays in tens of seconds while
still asserting the qualitative claims.
"""

import numpy as np
import pytest

from repro.experiments import (
    accuracy,
    fig1_price_variation,
    fig2_price_histogram,
    fig4_failure_rate,
    fig5_cost_comparison,
    fig6_heuristics,
    fig7_deadline_sweep,
    fig8_fault_tolerance,
    param_study,
    reduction,
    table2_exec_time,
)
from repro.experiments.common import ExperimentResult


class TestResultType:
    def test_row_arity_checked(self):
        res = ExperimentResult("X", "t", columns=("a", "b"))
        with pytest.raises(ValueError):
            res.add_row(1)

    def test_format_contains_id_and_rows(self):
        res = ExperimentResult("X", "title", columns=("a", "b"))
        res.add_row("r", 1.5)
        text = res.format_table()
        assert "X: title" in text and "1.500" in text


class TestFig1(object):
    def test_shapes(self, paper_env):
        res = fig1_price_variation.run(paper_env)
        assert len(res.rows) == 4
        spiky = res.data["m1.medium@us-east-1a"]
        calm = res.data["m1.medium@us-east-1b"]
        # temporal variation in the busy zone, none in the quiet one
        assert spiky.max_price > 3 * spiky.min_price
        assert calm.max_price < 2 * calm.min_price
        # spatial variation: same type, different zones, different cv
        assert spiky.coefficient_of_variation > 5 * calm.coefficient_of_variation


class TestFig2:
    def test_daily_distributions_stable(self, paper_env):
        res = fig2_price_histogram.run(paper_env)
        tv = res.data["tv_matrix"]
        off = tv[np.triu_indices(tv.shape[0], 1)]
        assert off.max() < 0.4
        for hist in res.data["histograms"]:
            assert hist.sum() == pytest.approx(1.0)


class TestFig4:
    def test_curve_shapes(self, paper_env):
        res = fig4_failure_rate.run(paper_env)
        for curve in res.data["curves"].values():
            # S(P) weakly increases with the bid
            assert np.all(np.diff(curve["price"]) >= -1e-9)
            # failure probability at the max bid is (near) zero
            assert curve["fail"][-1] < 0.05
            # failure probability at a low bid is substantial
            assert curve["fail"][0] > 0.2


class TestFig5:
    @pytest.fixture(scope="class")
    def res(self, paper_env):
        return fig5_cost_comparison.run(
            paper_env, apps=("BT", "FT", "BTIO"), lammps_procs=(), n_samples=60
        )

    def test_sompi_cheapest_everywhere(self, res):
        for cell in res.data["normalized"].values():
            for other in ("On-demand", "Marathe", "Marathe-Opt"):
                assert cell["SOMPI"] <= cell[other] + 0.02

    def test_sompi_large_savings_vs_ondemand(self, res):
        cells = res.data["normalized"].values()
        avg = np.mean([c["SOMPI"] / c["On-demand"] for c in cells])
        assert avg < 0.6  # paper: ~0.3

    def test_marathe_loses_to_baseline_on_btio(self, res):
        assert res.data["normalized"]["BTIO:loose"]["Marathe"] > 1.0

    def test_marathe_opt_beats_marathe_loose_compute(self, res):
        cell = res.data["normalized"]["BT:loose"]
        assert cell["Marathe-Opt"] < cell["Marathe"]

    def test_marathe_opt_near_marathe_tight_compute(self, res):
        cell = res.data["normalized"]["BT:tight"]
        assert cell["Marathe-Opt"] <= cell["Marathe"] + 0.05


class TestTable2:
    def test_times_within_deadline_factors(self, paper_env):
        res = table2_exec_time.run(paper_env, apps=("BT", "FT"), n_samples=60)
        data = res.data["normalized_time"]
        for method in ("Marathe-Opt", "SOMPI"):
            for t in data[f"loose:{method}"]:
                assert t <= 1.55
            for t in data[f"tight:{method}"]:
                assert t <= 1.35  # near the tight deadline


class TestFig6:
    @pytest.fixture(scope="class")
    def res(self, paper_env):
        return fig6_heuristics.run(paper_env, n_samples=60)

    def test_spot_heuristics_beat_ondemand(self, res):
        for cell in res.data["normalized"].values():
            assert cell["Spot-Inf"] < cell["On-demand"]

    def test_sompi_beats_heuristics_on_average(self, res):
        cells = list(res.data["normalized"].values())
        for other in ("Spot-Inf", "Spot-Avg"):
            avg = np.mean([c["SOMPI"] / c[other] for c in cells])
            assert avg < 1.0


class TestFig7:
    @pytest.fixture(scope="class")
    def res(self, paper_env):
        return fig7_deadline_sweep.run(
            paper_env, apps=("BT", "FT"), factors=(1.05, 1.5, 2.0, 3.4)
        )

    def test_cost_nonincreasing_in_deadline(self, res):
        for curve in res.data["curves"].values():
            c = curve["cost"]
            assert all(b <= a + 1e-6 for a, b in zip(c, c[1:]))

    def test_bt_switches_types(self, res):
        types = res.data["curves"]["BT"]["types"]
        assert types[0] != types[-1]  # cc2 at tight -> cheaper type later

    def test_ft_stays_on_cc2(self, res):
        for used in res.data["curves"]["FT"]["types"]:
            assert used == ["cc2.8xlarge"]


class TestFig8:
    @pytest.fixture(scope="class")
    def res(self, paper_env):
        return fig8_fault_tolerance.run(
            paper_env, n_samples=80, n_adaptive_starts=6
        )

    def test_sompi_beats_all_unable(self, res):
        raw = res.data["normalized"]
        assert raw["loose:SOMPI"] < raw["loose:All-Unable"] * 0.9

    def test_sompi_beats_wo_ck(self, res):
        raw = res.data["normalized"]
        assert raw["loose:SOMPI"] < raw["loose:w/o-CK"] * 0.95

    def test_all_rows_positive(self, res):
        for row in res.rows:
            assert row[2] > 0


class TestParamStudy:
    def test_slack_rows(self, paper_env):
        res = param_study.run_slack(paper_env, n_samples=40, slacks=(0.1, 0.2))
        assert len(res.rows) == 2
        assert all(0 < row[1] < 1.5 for row in res.rows)

    def test_kappa_overhead_grows(self, paper_env):
        res = param_study.run_kappa(paper_env, kappas=(1, 2, 3))
        combos = res.data["combos"]
        assert combos[0] < combos[1] < combos[2]
        costs = res.data["costs"]
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))

    def test_window_sweep_shapes(self, paper_env):
        res = param_study.run_window(
            paper_env, windows=(6.0, 20.0), n_starts=4
        )
        assert len(res.rows) == 2
        assert all(row[1] > 0 for row in res.rows)


class TestAccuracy:
    def test_failure_rate_accuracy(self, paper_env):
        res = accuracy.run_failure_rate(paper_env, n_windows=4)
        diffs = res.data["diffs"]
        assert diffs.size > 50
        assert np.median(diffs) < 0.35

    def test_model_accuracy(self, paper_env):
        res = accuracy.run_model(paper_env, apps=("BT",), n_samples=150)
        assert res.data["diffs"].max() < 0.5


class TestReduction:
    def test_counts_and_measurement(self, paper_env):
        res = reduction.run(paper_env)
        counts = res.data["analytic"]
        assert counts["naive"] > counts["dimension_reduced"] > counts["log_search"]
        log_best, log_evals = res.data["measured"]["log"]
        uni_best, uni_evals = res.data["measured"]["uniform"]
        assert log_evals < uni_evals / 100
        assert log_best <= uni_best * 1.10  # near-equal solution quality
