"""Discrete-event MPI runtime tests."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.errors import MPIRuntimeError
from repro.mpi.profile import ApplicationProfile
from repro.mpi.runtime import MPIRuntime
from repro.mpi.timing import estimate_execution_hours

C3 = get_instance_type("c3.xlarge")


def run(program, n=4, itype=C3, **kw):
    return MPIRuntime(itype, n, program, **kw).run()


class TestPointToPoint:
    def test_ring_pass(self):
        def program(mpi):
            nxt = (mpi.rank + 1) % mpi.size
            prv = (mpi.rank - 1) % mpi.size
            yield from mpi.send(nxt, 1024, payload=mpi.rank)
            got = yield from mpi.recv(prv)
            return got

        st = run(program, n=4)
        assert st.rank_results == (3, 0, 1, 2)

    def test_send_before_recv_buffers(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, 8, payload="hello")
                return None
            yield from mpi.compute(1.0)  # rank 1 is late to the recv
            return (yield from mpi.recv(0))

        st = run(program, n=2)
        assert st.rank_results[1] == "hello"

    def test_recv_before_send_parks(self):
        def program(mpi):
            if mpi.rank == 1:
                return (yield from mpi.recv(0))
            yield from mpi.compute(2.0)
            yield from mpi.send(1, 8, payload=42)
            return None

        st = run(program, n=2)
        assert st.rank_results[1] == 42
        assert st.wall_seconds > 0

    def test_tags_keep_streams_separate(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, 8, payload="a", tag=1)
                yield from mpi.send(1, 8, payload="b", tag=2)
                return None
            second = yield from mpi.recv(0, tag=2)
            first = yield from mpi.recv(0, tag=1)
            return (first, second)

        st = run(program, n=2)
        assert st.rank_results[1] == ("a", "b")

    def test_transfer_takes_time(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, 100e6)  # 100 MB
            else:
                yield from mpi.recv(0)

        st = run(program, n=2, itype=get_instance_type("m1.small"))
        assert st.wall_seconds > 0.5

    def test_deadlock_detected(self):
        def program(mpi):
            # Everyone receives; nobody sends.
            yield from mpi.recv((mpi.rank + 1) % mpi.size)

        with pytest.raises(MPIRuntimeError, match="deadlock"):
            run(program, n=2)

    def test_invalid_peer(self):
        def program(mpi):
            yield from mpi.send(99, 8)

        with pytest.raises(MPIRuntimeError):
            run(program, n=2)


class TestCollectives:
    def test_allreduce_sum(self):
        def program(mpi):
            return (yield from mpi.allreduce(mpi.rank, nbytes=8))

        st = run(program, n=8)
        assert st.rank_results == (28,) * 8

    def test_allreduce_max(self):
        def program(mpi):
            return (yield from mpi.allreduce(mpi.rank, nbytes=8, op="max"))

        st = run(program, n=5)
        assert st.rank_results == (4,) * 5

    def test_bcast_from_root(self):
        def program(mpi):
            value = "root-data" if mpi.rank == 2 else None
            return (yield from mpi.bcast(value, nbytes=64, root=2))

        st = run(program, n=4)
        assert st.rank_results == ("root-data",) * 4

    def test_allgather(self):
        def program(mpi):
            return (yield from mpi.allgather(mpi.rank * 10, nbytes=8))

        st = run(program, n=3)
        assert st.rank_results == ([0, 10, 20],) * 3

    def test_alltoall_transpose(self):
        def program(mpi):
            outbox = [f"{mpi.rank}->{d}" for d in range(mpi.size)]
            return (yield from mpi.alltoall(outbox, nbytes=32))

        st = run(program, n=3)
        assert st.rank_results[1] == ["0->1", "1->1", "2->1"]

    def test_barrier_synchronises(self):
        def program(mpi):
            yield from mpi.compute(float(mpi.rank))  # staggered arrivals
            yield from mpi.barrier()
            return mpi.now

        st = run(program, n=4)
        times = st.rank_results
        assert max(times) - min(times) < 1e-9  # all released together

    def test_mismatched_collective_raises(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.barrier()
            else:
                yield from mpi.allreduce(1, nbytes=8)

        with pytest.raises(MPIRuntimeError, match="mismatch"):
            run(program, n=2)

    def test_collective_ordering_is_per_call_index(self):
        def program(mpi):
            a = yield from mpi.allreduce(1, nbytes=8)
            b = yield from mpi.allreduce(2, nbytes=8)
            return (a, b)

        st = run(program, n=3)
        assert st.rank_results == ((3, 6),) * 3


class TestProfileRecording:
    def test_counters_recorded(self):
        def program(mpi):
            yield from mpi.compute(2.0)
            if mpi.rank == 0:
                yield from mpi.send(1, 5000)
            elif mpi.rank == 1:
                yield from mpi.recv(0)
            yield from mpi.allreduce(1.0, nbytes=16)
            yield from mpi.io(1e6, sequential=True)
            yield from mpi.io(2e5, sequential=False)

        st = run(program, n=2)
        p = st.profile
        assert p.instr_giga == pytest.approx(4.0)
        assert p.p2p_bytes == 5000
        assert p.p2p_messages == 1
        assert p.collectives["allreduce"].count == 1
        assert p.collectives["allreduce"].total_bytes == 16
        assert p.io_seq_bytes == pytest.approx(2e6)
        assert p.io_rnd_bytes == pytest.approx(4e5)

    def test_profile_feeds_estimator(self):
        def program(mpi):
            yield from mpi.compute(10.0)
            yield from mpi.allreduce(1.0, nbytes=1e6)

        st = run(program, n=4)
        est_hours = estimate_execution_hours(st.profile, C3)
        # The analytic estimate should be within ~20% of the simulated
        # wall time for this simple program (imbalance factor aside).
        assert est_hours * 3600 == pytest.approx(st.wall_seconds, rel=0.25)

    def test_timeout_detection(self):
        def program(mpi):
            yield from mpi.compute(1e9)

        with pytest.raises(MPIRuntimeError, match="timed out"):
            run(program, n=2, **{}) if False else MPIRuntime(
                C3, 2, program
            ).run(max_seconds=1.0)
