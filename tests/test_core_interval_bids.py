"""phi(P) checkpoint-interval and bid-candidate tests."""

import math

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.bid_search import log_bid_candidates, uniform_bid_candidates
from repro.core.interval import optimal_interval, young_interval
from repro.core.problem import OnDemandOption
from repro.errors import ConfigurationError
from repro.market.failure import FailureModel
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


class TestYoung:
    def test_formula(self):
        assert young_interval(0.5, 50.0, 100.0) == pytest.approx(math.sqrt(50.0))

    def test_clamped_to_exec_time(self):
        assert young_interval(10.0, 1e6, 5.0) == 5.0

    def test_infinite_mttf_disables_checkpointing(self):
        assert young_interval(0.5, math.inf, 10.0) == 10.0

    def test_zero_mttf_disables_checkpointing(self):
        assert young_interval(0.5, 0.0, 10.0) == 10.0

    def test_zero_overhead_checkpoints_often(self):
        f = young_interval(0.0, 100.0, 10.0)
        assert 0 < f < 10.0

    def test_monotone_in_mttf(self):
        fs = [young_interval(0.5, m, 1000.0) for m in (1.0, 10.0, 100.0)]
        assert fs == sorted(fs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            young_interval(0.5, 10.0, 0.0)
        with pytest.raises(ConfigurationError):
            young_interval(-0.5, 10.0, 1.0)


class TestOptimalInterval:
    @pytest.fixture
    def risky_model(self):
        """A market where ~half the starts die within a few hours."""
        # alternating 2h cheap / 2h expensive
        times, prices = [], []
        for k in range(60):
            times += [4.0 * k, 4.0 * k + 2.0]
            prices += [0.05, 0.80]
        return FailureModel(SpotPriceTrace(times, prices, 240.0), step_hours=1.0)

    @pytest.fixture
    def ondemand(self):
        return OnDemandOption(get_instance_type("c3.xlarge"), 8, 8.0)

    def test_risky_market_wants_checkpoints(self, risky_model, ondemand):
        spec = make_group(exec_time=10.0, overhead=0.05)
        f = optimal_interval(spec, 0.1, risky_model, ondemand)
        assert f < 10.0  # checkpointing pays off

    def test_safe_bid_skips_checkpoints(self, risky_model, ondemand):
        spec = make_group(exec_time=10.0, overhead=0.05)
        f = optimal_interval(spec, 2.0, risky_model, ondemand)
        assert f == pytest.approx(10.0)  # bid above max price: no failures

    def test_refine_beats_or_matches_young(self, risky_model, ondemand):
        """Theorem 1 premise: phi minimises the single-group cost."""
        from repro.core.cost_model import GroupOutcome

        spec = make_group(exec_time=10.0, overhead=0.05)
        bid = 0.1
        pmf = risky_model.failure_pmf(bid, 10)
        price = risky_model.expected_price(bid)

        def group_cost(interval):
            o = GroupOutcome.from_pmf(spec, bid, interval, pmf, price, 1.0)
            return o.expected_spot_cost() + ondemand.full_run_cost * float(
                np.dot(o.pmf, o.ratios)
            )

        refined = optimal_interval(spec, bid, risky_model, ondemand, refine=True)
        young = young_interval(
            spec.checkpoint_overhead, risky_model.mttf_hours(bid), spec.exec_time
        )
        assert group_cost(refined) <= group_cost(young) + 1e-9

    def test_no_refine_returns_young(self, risky_model, ondemand):
        spec = make_group(exec_time=10.0, overhead=0.05)
        f = optimal_interval(spec, 0.1, risky_model, ondemand, refine=False)
        y = young_interval(
            spec.checkpoint_overhead, risky_model.mttf_hours(0.1), spec.exec_time
        )
        assert f == pytest.approx(y)


class TestBidCandidates:
    def test_log_candidates_geometry(self):
        cands = log_bid_candidates(8.0, 3)
        assert np.allclose(cands, [1.0, 2.0, 4.0, 8.0])

    def test_count_is_levels_plus_one(self):
        assert log_bid_candidates(5.0, 7).size == 8

    def test_spacing_grows_with_bid(self):
        cands = log_bid_candidates(10.0, 6)
        gaps = np.diff(cands)
        assert np.all(np.diff(gaps) > 0)

    def test_ends_at_max(self):
        assert log_bid_candidates(3.3, 5)[-1] == pytest.approx(3.3)

    def test_floor_clipping_dedupes(self):
        cands = log_bid_candidates(8.0, 5, floor_price=3.0)
        assert cands[0] == 3.0
        assert np.unique(cands).size == cands.size

    def test_floor_above_max_rejected(self):
        with pytest.raises(ConfigurationError):
            log_bid_candidates(1.0, 3, floor_price=2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            log_bid_candidates(0.0, 3)
        with pytest.raises(ConfigurationError):
            log_bid_candidates(1.0, 0)

    def test_uniform_candidates(self):
        cands = uniform_bid_candidates(10.0, 5)
        assert np.allclose(cands, [2, 4, 6, 8, 10])

    def test_log_smaller_than_uniform(self):
        # The Section 4.2.2 point: log search needs far fewer points.
        assert log_bid_candidates(100.0, 7).size < uniform_bid_candidates(100.0, 100).size
