"""SompiConfig validation and immutability."""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG, SompiConfig


class TestDefaults:
    def test_paper_defaults(self):
        # The paper's parameter study selects these (Section 5.2).
        assert DEFAULT_CONFIG.slack == 0.20
        assert DEFAULT_CONFIG.kappa == 4
        assert DEFAULT_CONFIG.window_hours == 15.0

    def test_checkpointing_on_by_default(self):
        assert DEFAULT_CONFIG.checkpointing is True

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.slack = 0.5


class TestValidation:
    def test_bad_slack(self):
        with pytest.raises(Exception):
            SompiConfig(slack=1.5)

    def test_bad_kappa(self):
        with pytest.raises(ValueError):
            SompiConfig(kappa=0)

    def test_bad_window(self):
        with pytest.raises(Exception):
            SompiConfig(window_hours=0.0)

    def test_bad_bid_levels(self):
        with pytest.raises(ValueError):
            SompiConfig(bid_levels=0)

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            SompiConfig(subset_strategy="random")

    def test_bad_time_step(self):
        with pytest.raises(Exception):
            SompiConfig(time_step_hours=-1.0)


class TestWith:
    def test_with_replaces(self):
        cfg = DEFAULT_CONFIG.with_(kappa=2)
        assert cfg.kappa == 2
        assert cfg.slack == DEFAULT_CONFIG.slack

    def test_with_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_(kappa=-1)

    def test_with_does_not_mutate_original(self):
        DEFAULT_CONFIG.with_(slack=0.1)
        assert DEFAULT_CONFIG.slack == 0.20
