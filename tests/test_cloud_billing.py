"""Billing policy and ledger tests."""

import pytest

from repro.cloud.billing import CONTINUOUS, HOURLY, BillingPolicy, CostLedger
from repro.errors import ConfigurationError


class TestContinuous:
    def test_exact_fraction(self):
        assert CONTINUOUS.cost(0.10, 2.5) == pytest.approx(0.25)

    def test_zero_duration(self):
        assert CONTINUOUS.cost(0.10, 0.0) == 0.0


class TestHourly:
    def test_rounds_up(self):
        assert HOURLY.billable_hours(2.1) == 3.0
        assert HOURLY.billable_hours(3.0) == 3.0

    def test_interrupted_partial_hour_refunded(self):
        # 2014 spot semantics: Amazon-initiated kill refunds the last hour.
        assert HOURLY.billable_hours(2.7, interrupted=True) == 2.0

    def test_interrupted_refund_disabled(self):
        strict = BillingPolicy(granularity_hours=1.0, refund_interrupted_hour=False)
        assert strict.billable_hours(2.7, interrupted=True) == 3.0

    def test_zero_duration_not_billed(self):
        assert HOURLY.billable_hours(0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            HOURLY.billable_hours(-1.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            HOURLY.cost(-0.1, 1.0)

    def test_hourly_never_cheaper_than_continuous(self):
        for d in (0.1, 0.9, 1.0, 1.1, 7.3):
            assert HOURLY.cost(1.0, d) >= CONTINUOUS.cost(1.0, d)


class TestLedger:
    def test_totals_by_category(self):
        ledger = CostLedger()
        ledger.add("spot", "a", 1.0)
        ledger.add("spot", "b", 2.0)
        ledger.add("ondemand", "c", 4.0)
        assert ledger.total() == 7.0
        assert ledger.total("spot") == 3.0
        assert ledger.by_category() == {"spot": 3.0, "ondemand": 4.0}

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.add("spot", "x", 1.0)
        b.add("storage", "y", 0.5)
        a.merge(b)
        assert a.total() == 1.5

    def test_rejects_negative_item(self):
        with pytest.raises(ConfigurationError):
            CostLedger().add("spot", "bad", -1.0)
