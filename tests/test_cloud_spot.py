"""Spot lifecycle tests against the known step trace."""

import pytest

from repro.cloud.spot import (
    SpotLifecycle,
    first_at_or_below,
    first_exceedance,
    integrate_price,
)
from repro.errors import TraceError

# step_trace: 0.10 on [0,5), 0.50 on [5,8), 0.05 on [8,20), 2.0 on [20,24)


class TestFirstExceedance:
    def test_immediately_above(self, step_trace):
        assert first_exceedance(step_trace, 0.3, 6.0) == 6.0

    def test_future_segment(self, step_trace):
        assert first_exceedance(step_trace, 0.3, 0.0) == 5.0
        assert first_exceedance(step_trace, 0.3, 9.0) == 20.0

    def test_never(self, step_trace):
        assert first_exceedance(step_trace, 5.0, 0.0) is None

    def test_bid_exactly_at_price_not_exceeded(self, step_trace):
        # price == bid keeps the instance alive (out-of-bid is strict >)
        assert first_exceedance(step_trace, 0.5, 5.0) == 20.0

    def test_out_of_window(self, step_trace):
        with pytest.raises(TraceError):
            first_exceedance(step_trace, 0.3, 24.0)


class TestFirstAtOrBelow:
    def test_immediate(self, step_trace):
        assert first_at_or_below(step_trace, 0.2, 1.0) == 1.0

    def test_waits_for_price_drop(self, step_trace):
        assert first_at_or_below(step_trace, 0.2, 6.0) == 8.0

    def test_never(self, step_trace):
        assert first_at_or_below(step_trace, 0.01, 0.0) is None

    def test_boundary_equality_launches(self, step_trace):
        assert first_at_or_below(step_trace, 0.5, 5.5) == 5.5


class TestIntegratePrice:
    def test_within_one_segment(self, step_trace):
        assert integrate_price(step_trace, 1.0, 3.0) == pytest.approx(0.2)

    def test_across_segments(self, step_trace):
        # [4,9): 1h @0.10 + 3h @0.50 + 1h @0.05
        assert integrate_price(step_trace, 4.0, 9.0) == pytest.approx(1.65)

    def test_empty_interval(self, step_trace):
        assert integrate_price(step_trace, 5.0, 5.0) == 0.0

    def test_reversed_bounds(self, step_trace):
        with pytest.raises(TraceError):
            integrate_price(step_trace, 9.0, 4.0)


class TestLifecycle:
    def test_run_to_out_of_bid(self, step_trace):
        run = SpotLifecycle(step_trace).run(bid=0.3, requested_at=0.0)
        assert run.launched_at == 0.0
        assert run.end == 5.0
        assert run.terminated
        assert run.cost_per_instance == pytest.approx(0.5)

    def test_waits_then_runs(self, step_trace):
        run = SpotLifecycle(step_trace).run(bid=0.2, requested_at=6.0)
        assert run.launched_at == 8.0
        assert run.end == 20.0
        assert run.terminated
        assert run.running_hours == 12.0

    def test_max_duration_cap(self, step_trace):
        run = SpotLifecycle(step_trace).run(bid=0.3, requested_at=8.0, max_duration=5.0)
        assert run.end == 13.0
        assert not run.terminated
        assert run.cost_per_instance == pytest.approx(0.25)

    def test_never_launches(self, step_trace):
        run = SpotLifecycle(step_trace).run(bid=0.01, requested_at=0.0)
        assert not run.launched
        assert run.cost_per_instance == 0.0
        assert not run.terminated

    def test_high_bid_runs_to_horizon(self, step_trace):
        run = SpotLifecycle(step_trace).run(bid=99.0, requested_at=0.0)
        assert run.end == step_trace.end_time
        assert not run.terminated
