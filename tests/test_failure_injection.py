"""Failure-injection and pathological-market tests.

Each test drives a component through a hostile scenario the normal
paths never produce: markets that never admit a launch, prices that
flap every step, spikes that interrupt checkpoints mid-write, traces
that end mid-run, and optimizers given only doomed candidates.
"""

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.config import SompiConfig
from repro.core.optimizer import SompiOptimizer
from repro.core.problem import (
    Decision,
    GroupDecision,
    OnDemandOption,
    Problem,
)
from repro.errors import TraceError
from repro.execution.adaptive import AdaptiveExecutor
from repro.execution.replay import replay_decision, replay_window
from repro.market.failure import FailureModel
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


def problem_with(trace, **group_kw):
    g = make_group(n_instances=2, **group_kw)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=30.0)
    h = SpotPriceHistory()
    h.add(g.key, trace)
    return problem, h


class TestHostileMarkets:
    def test_price_always_above_bid(self):
        problem, h = problem_with(
            SpotPriceTrace([0.0], [5.0], 500.0), exec_time=6.0
        )
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0)
        assert result.completed_by == "ondemand"
        assert result.group_records[0].launched is False

    def test_flapping_price_every_step(self):
        """Price crosses the bid every single hour: maximum churn."""
        times = np.arange(0.0, 400.0, 1.0)
        prices = np.where(np.arange(times.size) % 2 == 0, 0.05, 0.9)
        problem, h = problem_with(
            SpotPriceTrace(times, prices, 401.0),
            exec_time=6.0,
            overhead=0.1,
            recovery=0.1,
        )
        d = Decision(groups=(GroupDecision(0, 0.1, 0.5),), ondemand_index=0)
        single = replay_decision(problem, d, h, 0.0)
        assert single.completed_by == "ondemand"  # dies within the first hour
        persistent = replay_decision(problem, d, h, 0.0, semantics="persistent")
        assert persistent.completed  # grinds through, half an hour at a time
        assert persistent.makespan > single.makespan

    def test_death_exactly_at_checkpoint_completion(self):
        """Spike lands at the instant a checkpoint write finishes."""
        # F=2, O=0.5: first checkpoint completes at wall 2.5
        problem, h = problem_with(
            SpotPriceTrace([0.0, 2.5], [0.05, 0.9], 400.0),
            exec_time=6.0,
            overhead=0.5,
            recovery=0.5,
        )
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0)
        rec = result.group_records[0]
        assert rec.saved == pytest.approx(2.0)  # the checkpoint counts

    def test_death_mid_checkpoint_write(self):
        """Spike lands during the checkpoint write: progress not saved."""
        problem, h = problem_with(
            SpotPriceTrace([0.0, 2.2], [0.05, 0.9], 400.0),
            exec_time=6.0,
            overhead=0.5,
            recovery=0.5,
        )
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0)
        rec = result.group_records[0]
        assert rec.saved == 0.0
        assert result.ondemand_hours == pytest.approx(5.0)  # full rerun

    def test_trace_ends_mid_window(self):
        problem, h = problem_with(
            SpotPriceTrace([0.0], [0.05], 10.0), exec_time=6.0
        )
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        with pytest.raises(TraceError):
            replay_window(problem, d, h, 0.0, 50.0)

    def test_zero_price_market(self):
        """A free market (price floor 0 is allowed by the trace type)."""
        problem, h = problem_with(
            SpotPriceTrace([0.0], [0.0], 400.0), exec_time=6.0
        )
        d = Decision(groups=(GroupDecision(0, 0.1, 6.0),), ondemand_index=0)
        result = replay_decision(problem, d, h, 0.0)
        assert result.completed
        assert result.cost == 0.0


class TestOptimizerUnderHostility:
    def test_all_candidates_doomed_falls_back_to_ondemand(self):
        """Every market is unaffordable: the plan must be pure on-demand."""
        g1 = make_group(zone="us-east-1a", exec_time=6.0)
        g2 = make_group(zone="us-east-1b", exec_time=6.0)
        od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
        problem = Problem(groups=(g1, g2), ondemand_options=(od,), deadline=30.0)
        # Spot price permanently above on-demand: spot can never win.
        models = {
            g.key: FailureModel(SpotPriceTrace([0.0], [9.9], 400.0))
            for g in (g1, g2)
        }
        plan = SompiOptimizer(problem, models, SompiConfig(kappa=2)).plan()
        assert not plan.used_spot
        assert plan.expectation.cost == pytest.approx(od.full_run_cost)

    def test_spiky_training_window_still_produces_plan(self):
        rng_times = np.arange(0.0, 300.0, 0.5)
        rng = np.random.default_rng(3)
        prices = np.where(rng.random(rng_times.size) < 0.3, 2.0, 0.02)
        trace = SpotPriceTrace(rng_times, prices, 301.0)
        problem, h = problem_with(trace, exec_time=6.0)
        plan = SompiOptimizer.from_history(problem, h, SompiConfig(kappa=1)).plan()
        assert plan.expectation.time <= problem.deadline + 1e-9


class TestAdaptiveUnderHostility:
    def test_market_collapses_after_start(self, small_env):
        """All spot becomes unaffordable mid-run: adaptive must still finish."""
        problem = small_env.problem("BT", 1.5)
        # overwrite every trace with: cheap before t0+1, hostile after
        t0 = small_env.train_end + 10.0
        hostile = SpotPriceHistory()
        for key, trace in small_env.history.items():
            cheap = trace.slice(trace.start_time, t0 + 1.0)
            wall = SpotPriceTrace([t0 + 1.0], [99.0], trace.end_time)
            hostile.add(key, cheap.concat(wall.shift(0.0 - 0.0)))
        ex = AdaptiveExecutor(problem, hostile, small_env.config)
        res = ex.run(t0)
        assert res.completed
        assert res.fallback_used or res.makespan <= problem.deadline * 1.2

    def test_zero_length_history_prefix_rejected(self, small_env):
        problem = small_env.problem("BT", 1.5)
        ex = AdaptiveExecutor(problem, small_env.history, small_env.config)
        with pytest.raises(Exception):
            ex.run(start_time=-1e9)  # before any history exists
