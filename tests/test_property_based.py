"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.billing import CONTINUOUS, HOURLY
from repro.core.ckpt_math import (
    progress_after_wall,
    total_wall,
    wall_for_productive,
)
from repro.core.cost_model import expected_max, expected_min
from repro.core.ratio import ratio, ratio_array
from repro.market.failure import FailureModel
from repro.market.trace import SpotPriceTrace

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
prices = st.floats(min_value=0.001, max_value=50.0, allow_nan=False)


@st.composite
def traces(draw, min_segments=1, max_segments=12):
    n = draw(st.integers(min_segments, max_segments))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=20.0), min_size=n, max_size=n
        )
    )
    times = np.concatenate([[0.0], np.cumsum(gaps[:-1])]) if n > 1 else np.array([0.0])
    ps = draw(st.lists(prices, min_size=n, max_size=n))
    end = float(times[-1]) + draw(st.floats(min_value=0.5, max_value=30.0))
    return SpotPriceTrace(times, ps, end)


@st.composite
def discrete_rvs(draw, max_support=6):
    n = draw(st.integers(1, max_support))
    values = np.sort(
        np.array(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=10.0),
                    min_size=n,
                    max_size=n,
                )
            )
        )
    )
    weights = np.array(
        draw(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=n, max_size=n))
    )
    return values, weights / weights.sum()


# ----------------------------------------------------------------------
# Trace algebra
# ----------------------------------------------------------------------
@given(traces())
def test_trace_mean_between_min_and_max(trace):
    eps = 1e-9 * max(1.0, trace.max_price())
    assert trace.min_price() - eps <= trace.mean_price() <= trace.max_price() + eps


@given(traces(), st.floats(min_value=-100, max_value=100))
def test_shift_preserves_statistics(trace, dt):
    moved = trace.shift(dt)
    assert np.isclose(moved.mean_price(), trace.mean_price())
    assert np.isclose(moved.duration, trace.duration)


@given(traces(min_segments=2))
def test_slice_window_is_subset_of_price_range(trace):
    mid = (trace.start_time + trace.end_time) / 2
    window = trace.slice(trace.start_time, mid)
    assert window.min_price() >= trace.min_price() - 1e-12
    assert window.max_price() <= trace.max_price() + 1e-12


@given(traces(), traces())
def test_concat_duration_adds(a, b):
    joined = a.concat(b)
    assert np.isclose(joined.duration, a.duration + b.duration)


@given(traces(), st.floats(min_value=0.0, max_value=1.0))
def test_quantile_within_price_range(trace, q):
    v = trace.quantile(q)
    assert trace.min_price() <= v <= trace.max_price()


@given(traces(), prices)
def test_fraction_below_is_probability(trace, p):
    f = trace.fraction_below(p)
    assert 0.0 <= f <= 1.0


# ----------------------------------------------------------------------
# Ratio and checkpoint math
# ----------------------------------------------------------------------
interval_exec = st.tuples(
    st.floats(min_value=0.5, max_value=50.0),  # exec_time
    st.floats(min_value=0.1, max_value=60.0),  # interval
    st.floats(min_value=0.0, max_value=5.0),  # recovery/overhead
)


@given(interval_exec, st.floats(min_value=0.0, max_value=1.0))
def test_ratio_bounds(params, frac):
    T, F, R = params
    t = frac * T
    r = ratio(t, T, F, R)
    assert 0.0 <= r <= 1.0


@given(interval_exec)
def test_ratio_array_monotone_nonincreasing(params):
    T, F, R = params
    ts = np.linspace(0.0, T, 64)
    vec = ratio_array(ts, T, F, R)
    assert np.all(np.diff(vec) <= 1e-9)


@given(interval_exec, st.floats(min_value=0.0, max_value=1.0))
def test_wall_roundtrip(params, frac):
    T, F, O = params
    p = frac * T
    w = wall_for_productive(p, T, F, O)
    productive, saved, _n = progress_after_wall(w, T, F, O)
    assert productive >= p - 1e-6
    assert saved <= productive + 1e-9


@given(interval_exec, st.floats(min_value=0.0, max_value=100.0))
def test_progress_capped_at_exec_time(params, wall):
    T, F, O = params
    productive, saved, n = progress_after_wall(wall, T, F, O)
    assert 0.0 <= saved <= productive <= T
    assert n >= 0


@given(interval_exec)
def test_total_wall_at_least_exec_time(params):
    T, F, O = params
    assert total_wall(T, F, O) >= T - 1e-12


# ----------------------------------------------------------------------
# Extreme-value helpers
# ----------------------------------------------------------------------
@given(st.lists(discrete_rvs(), min_size=1, max_size=3))
def test_extremes_vs_monte_carlo(rvs):
    values = [v for v, _ in rvs]
    pmfs = [p for _, p in rvs]
    e_min = expected_min(values, pmfs)
    e_max = expected_max(values, pmfs)
    assert e_min <= e_max + 1e-9
    rng = np.random.default_rng(0)
    samples = np.stack(
        [rng.choice(v, size=4000, p=p) for v, p in zip(values, pmfs)]
    )
    mc_min = samples.min(axis=0).mean()
    mc_max = samples.max(axis=0).mean()
    assert abs(e_min - mc_min) < 0.35
    assert abs(e_max - mc_max) < 0.35


@given(discrete_rvs())
def test_single_rv_extremes_equal_mean(rv):
    v, p = rv
    mean = float(np.dot(v, p))
    assert np.isclose(expected_min([v], [p]), mean)
    assert np.isclose(expected_max([v], [p]), mean)


# ----------------------------------------------------------------------
# Failure model
# ----------------------------------------------------------------------
@settings(max_examples=40)
@given(traces(min_segments=2), prices, st.integers(1, 20))
def test_failure_pmf_is_distribution(trace, bid, horizon):
    if trace.duration < 1.0:
        return
    fm = FailureModel(trace, step_hours=1.0)
    pmf = fm.failure_pmf(bid, horizon)
    assert np.isclose(pmf.sum(), 1.0)
    assert np.all(pmf >= -1e-12)


@settings(max_examples=40)
@given(traces(min_segments=2), prices)
def test_survival_is_monotone(trace, bid):
    if trace.duration < 1.0:
        return
    fm = FailureModel(trace, step_hours=1.0)
    surv = fm.survival_curve(bid, 10)
    assert surv[0] == 1.0
    assert np.all(np.diff(surv) <= 1e-9)


@settings(max_examples=40)
@given(traces(min_segments=2))
def test_expected_price_monotone_in_bid(trace):
    if trace.duration < 1.0:
        return
    fm = FailureModel(trace, step_hours=1.0)
    bids = np.linspace(fm.min_price(), fm.max_price(), 6)
    values = [fm.expected_price(b) for b in bids]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


# ----------------------------------------------------------------------
# Billing
# ----------------------------------------------------------------------
@given(
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=10.0),
)
def test_hourly_never_cheaper_than_continuous(duration, price):
    assert HOURLY.cost(price, duration) >= CONTINUOUS.cost(price, duration) - 1e-12


@given(st.floats(min_value=0.0, max_value=100.0))
def test_refund_never_increases_bill(duration):
    assert HOURLY.billable_hours(duration, interrupted=True) <= HOURLY.billable_hours(
        duration, interrupted=False
    )
