"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Timeout


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = Engine()
        log = []
        eng.schedule(5.0, lambda: log.append("b"))
        eng.schedule(1.0, lambda: log.append("a"))
        eng.schedule(9.0, lambda: log.append("c"))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_stable_order_at_same_time(self):
        eng = Engine()
        log = []
        for i in range(5):
            eng.schedule(1.0, lambda i=i: log.append(i))
        eng.run()
        assert log == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        eng = Engine()
        seen = []
        eng.schedule(2.5, lambda: seen.append(eng.now))
        assert eng.run() == 2.5
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        eng = Engine(start_time=10.0)
        seen = []
        eng.schedule_at(12.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [12.0]

    def test_call_soon_runs_at_current_time(self):
        eng = Engine()
        seen = []
        eng.schedule(3.0, lambda: eng.call_soon(lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [3.0]

    def test_nested_scheduling(self):
        eng = Engine()
        log = []

        def first():
            log.append(("first", eng.now))
            eng.schedule(2.0, lambda: log.append(("second", eng.now)))

        eng.schedule(1.0, first)
        eng.run()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        eng = Engine()
        log = []
        eng.schedule(1.0, lambda: log.append(1))
        eng.schedule(10.0, lambda: log.append(10))
        final = eng.run(until=5.0)
        assert log == [1]
        assert final == 5.0

    def test_until_with_empty_queue_advances_clock(self):
        eng = Engine()
        assert eng.run(until=42.0) == 42.0

    def test_resume_after_until(self):
        eng = Engine()
        log = []
        eng.schedule(10.0, lambda: log.append(10))
        eng.run(until=5.0)
        eng.run()
        assert log == [10]

    def test_max_events_guard(self):
        eng = Engine()

        def rearm():
            eng.schedule(0.0, rearm)

        eng.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)


class TestEvents:
    def test_event_delivers_value(self):
        eng = Engine()
        ev = eng.event("x")
        got = []
        ev.add_waiter(got.append)
        eng.schedule(1.0, lambda: ev.succeed(42))
        eng.run()
        assert got == [42]

    def test_waiter_after_fire_runs_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("v")
        got = []
        ev.add_waiter(got.append)
        eng.run()
        assert got == ["v"]

    def test_double_fire_is_error(self):
        eng = Engine()
        ev = eng.event("dup")
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_fire_is_error(self):
        eng = Engine()
        ev = eng.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_peek(self):
        eng = Engine()
        assert eng.peek() is None
        eng.schedule(3.0, lambda: None)
        assert eng.peek() == 3.0


class TestTimeout:
    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.1)

    def test_zero_timeout_ok(self):
        assert Timeout(0.0).delay == 0.0
