"""Application profile and timing estimator tests."""

import pytest

from repro.cloud.instance_types import get_instance_type
from repro.cloud.s3 import S3Store
from repro.errors import ConfigurationError
from repro.mpi.profile import ApplicationProfile, CollectiveCounts
from repro.mpi.timing import (
    estimate_checkpoint,
    estimate_execution_hours,
)


def profile(**kw):
    base = dict(name="p", n_processes=8, instr_giga=100.0)
    base.update(kw)
    return ApplicationProfile(**base)


class TestProfile:
    def test_scaled_multiplies_counters(self):
        p = profile(
            p2p_bytes=10.0,
            p2p_messages=2.0,
            collectives={"allreduce": CollectiveCounts(8.0, 1.0)},
            io_seq_bytes=5.0,
        )
        s = p.scaled(3.0)
        assert s.instr_giga == 300.0
        assert s.p2p_bytes == 30.0
        assert s.collectives["allreduce"].count == 3.0
        assert s.io_seq_bytes == 15.0
        # resident set does not grow with repeats
        assert s.memory_gb_per_process == p.memory_gb_per_process

    def test_merged_adds_counters(self):
        a = profile(collectives={"alltoall": CollectiveCounts(4.0, 1.0)})
        b = profile(collectives={"alltoall": CollectiveCounts(6.0, 2.0)})
        m = a.merged(b)
        assert m.instr_giga == 200.0
        assert m.collectives["alltoall"].total_bytes == 10.0
        assert m.collectives["alltoall"].count == 3.0

    def test_merged_rejects_different_n(self):
        with pytest.raises(ConfigurationError):
            profile().merged(profile(n_processes=16))

    def test_checkpoint_bytes(self):
        p = profile(memory_gb_per_process=0.5)
        assert p.checkpoint_bytes == pytest.approx(0.5 * 8 * 1024**3)

    def test_total_comm_bytes(self):
        p = profile(
            p2p_bytes=100.0, collectives={"bcast": CollectiveCounts(10.0, 1.0)}
        )
        assert p.total_comm_bytes == pytest.approx(100.0 + 10.0 * 8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            profile(instr_giga=-1.0)
        with pytest.raises(ConfigurationError):
            profile(n_processes=0)


class TestEstimator:
    def test_cpu_only_scaling(self):
        p = profile(instr_giga=3600.0 * 8, n_processes=8)
        small = estimate_execution_hours(p, get_instance_type("m1.small"))
        medium = estimate_execution_hours(p, get_instance_type("m1.medium"))
        # m1.medium cores are 2.2x faster
        assert small / medium == pytest.approx(2.2, rel=1e-6)

    def test_io_bound_favours_many_instances(self):
        p = profile(n_processes=128, instr_giga=1.0, io_seq_bytes=1e13)
        small = estimate_execution_hours(p, get_instance_type("m1.small"))
        cc2 = estimate_execution_hours(p, get_instance_type("cc2.8xlarge"))
        assert small < cc2

    def test_comm_bound_favours_cc2(self):
        p = profile(
            n_processes=128,
            instr_giga=1.0,
            collectives={"alltoall": CollectiveCounts(4e9, 1000.0)},
        )
        small = estimate_execution_hours(p, get_instance_type("m1.small"))
        cc2 = estimate_execution_hours(p, get_instance_type("cc2.8xlarge"))
        assert cc2 < small

    def test_random_io_penalised(self):
        seq = profile(io_seq_bytes=1e12, instr_giga=1.0)
        rnd = profile(io_rnd_bytes=1e12, instr_giga=1.0)
        it = get_instance_type("m1.small")
        assert estimate_execution_hours(rnd, it) > estimate_execution_hours(seq, it)

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_execution_hours(profile(instr_giga=0.0), get_instance_type("m1.small"))


class TestCheckpointEstimate:
    def test_fewer_instances_upload_slower(self):
        p = profile(n_processes=128, memory_gb_per_process=0.35)
        small = estimate_checkpoint(p, get_instance_type("m1.small"))
        cc2 = estimate_checkpoint(p, get_instance_type("cc2.8xlarge"))
        assert cc2.checkpoint_hours > small.checkpoint_hours
        assert small.image_bytes == cc2.image_bytes

    def test_recovery_costs_more_than_checkpoint(self):
        p = profile(n_processes=64, memory_gb_per_process=0.3)
        cp = estimate_checkpoint(p, get_instance_type("c3.xlarge"))
        assert cp.recovery_hours > cp.checkpoint_hours

    def test_custom_storage_bandwidth(self):
        p = profile(n_processes=128, memory_gb_per_process=0.35)
        fast = estimate_checkpoint(
            p, get_instance_type("m1.small"), S3Store(bandwidth_mbps=500.0)
        )
        slow = estimate_checkpoint(
            p, get_instance_type("m1.small"), S3Store(bandwidth_mbps=1.0)
        )
        assert fast.checkpoint_hours < slow.checkpoint_hours

    def test_coordination_floor(self):
        p = profile(n_processes=4, memory_gb_per_process=1e-9)
        cp = estimate_checkpoint(p, get_instance_type("c3.xlarge"))
        assert cp.checkpoint_hours >= 45.0 / 3600.0 * 0.99
