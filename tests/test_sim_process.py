"""Generator-coroutine process tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Timeout
from repro.sim.process import Process, ProcessExit


def test_timeout_advances_clock():
    eng = Engine()
    log = []

    def prog():
        yield Timeout(2.0)
        log.append(eng.now)
        yield Timeout(3.0)
        log.append(eng.now)

    Process(eng, prog())
    eng.run()
    assert log == [2.0, 5.0]


def test_return_value_on_done_event():
    eng = Engine()

    def prog():
        yield Timeout(1.0)
        return "answer"

    p = Process(eng, prog())
    eng.run()
    assert p.done.fired
    assert p.done.value == "answer"
    assert not p.alive


def test_wait_on_event_receives_value():
    eng = Engine()
    ev = eng.event()
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    Process(eng, waiter())
    eng.schedule(4.0, lambda: ev.succeed("ping"))
    eng.run()
    assert got == [(4.0, "ping")]


def test_wait_on_another_process():
    eng = Engine()

    def child():
        yield Timeout(3.0)
        return 99

    def parent():
        result = yield Process(eng, child(), name="child")
        return result + 1

    p = Process(eng, parent(), name="parent")
    eng.run()
    assert p.done.value == 100
    assert eng.now == 3.0


def test_interrupt_delivers_process_exit():
    eng = Engine()
    log = []

    def prog():
        try:
            yield Timeout(100.0)
        except ProcessExit as exc:
            log.append(exc.reason)

    p = Process(eng, prog())
    eng.schedule(1.0, lambda: p.interrupt("killed"))
    eng.run()
    assert log == ["killed"]
    assert eng.now == pytest.approx(1.0)


def test_unhandled_interrupt_finishes_process():
    eng = Engine()

    def prog():
        yield Timeout(100.0)

    p = Process(eng, prog())
    eng.schedule(2.0, lambda: p.interrupt("reason"))
    eng.run()
    assert not p.alive
    assert p.done.value == "reason"


def test_interrupt_finished_process_is_noop():
    eng = Engine()

    def prog():
        yield Timeout(1.0)
        return "done"

    p = Process(eng, prog())
    eng.run()
    p.interrupt("late")
    eng.run()
    assert p.done.value == "done"


def test_first_of_two_replicas_cancels_other():
    """The replication pattern: first finisher interrupts the rest."""
    eng = Engine()

    def replica(delay):
        yield Timeout(delay)
        return delay

    fast = Process(eng, replica(2.0), name="fast")
    slow = Process(eng, replica(10.0), name="slow")
    fast.done.add_waiter(lambda _v: slow.interrupt("beaten"))
    eng.run()
    assert fast.done.value == 2.0
    assert slow.done.value == "beaten"
    assert eng.now == pytest.approx(2.0)


def test_yield_garbage_raises():
    eng = Engine()

    def prog():
        yield "nonsense"

    Process(eng, prog())
    with pytest.raises(SimulationError):
        eng.run()


def test_zero_delay_process_chain():
    eng = Engine()
    order = []

    def prog(tag):
        order.append(tag)
        if False:  # pragma: no cover - make it a generator
            yield

    Process(eng, prog("a"))
    Process(eng, prog("b"))
    eng.run()
    assert order == ["a", "b"]
