"""Shared-memory Monte-Carlo fan-out tests.

The contract (montecarlo docstring): chunked parallel replay is
byte-identical to the serial path for the same rng — now with the
history shipped through one shared-memory block per trace instead of
re-pickled per chunk — and :func:`resolve_jobs` is the single authority
for the worker-count decision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cloud.instance_types import get_instance_type
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.errors import ConfigurationError
from repro.execution import montecarlo
from repro.execution.montecarlo import replay_many, resolve_jobs
from repro.execution.shm_pool import SharedTracePool, attach_history
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


@pytest.fixture
def spiky_problem():
    g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=20.0)
    times, prices = [], []
    for k in range(60):
        times += [12.0 * k, 12.0 * k + 9.0]
        prices += [0.05, 0.90]
    h = SpotPriceHistory()
    h.add(g.key, SpotPriceTrace(times, prices, 732.0))
    return problem, h


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None, 100) == 1

    @pytest.mark.parametrize("jobs", [0, -1, -7])
    def test_nonpositive_is_a_configuration_error(self, jobs):
        with pytest.raises(ConfigurationError):
            resolve_jobs(jobs, 100)

    def test_single_start_stays_serial(self):
        assert resolve_jobs(8, 1) == 1
        assert resolve_jobs(8, 0) == 1

    def test_capped_by_start_count(self):
        assert resolve_jobs(8, 3) == 3
        assert resolve_jobs(3, 100) == 3


class TestSharedTracePool:
    def test_attach_is_byte_identical(self, spiky_problem):
        _, h = spiky_problem
        pool = SharedTracePool(h)
        try:
            attached = attach_history(pool.handle)
            for key, trace in h.items():
                got = attached.get(key)
                assert got.times.tobytes() == trace.times.tobytes()
                assert got.prices.tobytes() == trace.prices.tobytes()
                assert got.end_time == trace.end_time
        finally:
            pool.close()

    def test_close_is_idempotent(self, spiky_problem):
        _, h = spiky_problem
        pool = SharedTracePool(h)
        pool.close()
        pool.close()


class TestParallelByteIdentity:
    def _decision(self):
        return Decision(groups=(GroupDecision(0, 0.10, 2.0),), ondemand_index=0)

    @pytest.mark.parametrize("jobs", [2, 3, 8])
    def test_results_match_serial_exactly(self, spiky_problem, jobs):
        problem, h = spiky_problem
        d = self._decision()
        serial = replay_many(problem, d, h, 12, np.random.default_rng(7))
        parallel = replay_many(
            problem, d, h, 12, np.random.default_rng(7), jobs=jobs
        )
        assert serial == parallel

    def test_pickling_fallback_matches_and_is_counted(
        self, spiky_problem, monkeypatch
    ):
        problem, h = spiky_problem
        d = self._decision()
        serial = replay_many(problem, d, h, 8, np.random.default_rng(3))

        def boom(history):
            raise OSError("no /dev/shm here")

        from repro.execution import shm_pool

        # Drop any registered pool for this content first — the registry
        # would otherwise serve a cached handle and never call the
        # patched factory.
        shm_pool.close_trace_pools()
        monkeypatch.setattr(shm_pool, "SharedTracePool", boom)
        before = obs.get_metrics().get("mc.shm_pool_unavailable")
        fallback = replay_many(
            problem, d, h, 8, np.random.default_rng(3), jobs=2
        )
        assert obs.get_metrics().get("mc.shm_pool_unavailable") == before + 1
        assert serial == fallback


class TestWorkerPoolEviction:
    """Superseded pool mappings are closed, not leaked (two sequential
    evaluations must leave exactly one pool attached)."""

    def _cleanup(self):
        from repro.execution import shm_pool

        shm_pool._evict_superseded("__cleanup__")

    def test_second_attach_closes_the_first_pool(self, spiky_problem):
        from repro.execution import shm_pool

        _, h = spiky_problem
        pool_a = SharedTracePool(h)
        pool_b = None
        try:
            attach_history(pool_a.handle)
            id_a = pool_a.handle.pool_id
            blocks_a = list(shm_pool._ATTACHED_BLOCKS[id_a])
            assert blocks_a  # one block per trace was mapped

            pool_b = SharedTracePool(h)
            attach_history(pool_b.handle)
            # Only the current pool is tracked ...
            assert set(shm_pool._ATTACHED) == {pool_b.handle.pool_id}
            assert set(shm_pool._ATTACHED_BLOCKS) == {pool_b.handle.pool_id}
            # ... and the superseded pool's mappings were closed.
            for shm in blocks_a:
                assert shm.buf is None
        finally:
            pool_a.close()
            if pool_b is not None:
                pool_b.close()
            self._cleanup()

    def test_reattach_same_pool_is_cached_and_kept(self, spiky_problem):
        from repro.execution import shm_pool

        _, h = spiky_problem
        pool = SharedTracePool(h)
        try:
            first = attach_history(pool.handle)
            assert attach_history(pool.handle) is first
            assert set(shm_pool._ATTACHED) == {pool.handle.pool_id}
        finally:
            pool.close()
            self._cleanup()

    def test_live_view_survives_eviction(self, spiky_problem):
        _, h = spiky_problem
        key, trace = next(iter(h.items()))
        pool_a = SharedTracePool(h)
        pool_b = None
        try:
            hist_a = attach_history(pool_a.handle)
            times_view = hist_a.get(key).times  # simulate an in-flight chunk
            del hist_a
            pool_b = SharedTracePool(h)
            attach_history(pool_b.handle)
            # The mapping under the live view was not yanked: the numpy
            # view still reads the original bytes (BufferError path).
            assert times_view.tobytes() == trace.times.tobytes()
        finally:
            pool_a.close()
            if pool_b is not None:
                pool_b.close()
            self._cleanup()
