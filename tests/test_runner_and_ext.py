"""Runner CLI and extension-experiment tests."""

import json

import pytest

from repro.experiments import ext_correlation, ext_semantics, runner


class TestRunner:
    def test_quick_single_experiment(self, capsys):
        code = runner.main(["--quick", "--only", "fig1", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FIG1" in out
        assert "ran 1 experiment tables" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["--only", "fig99"])

    def test_json_export(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        code = runner.main(
            ["--quick", "--only", "fig2", "fig4", "--json", str(path)]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro.experiment-results.v1"
        ids = [t["experiment_id"] for t in doc["tables"]]
        assert ids == ["FIG2", "FIG4"]
        for table in doc["tables"]:
            assert len(table["columns"]) > 0
            for row in table["rows"]:
                assert len(row) == len(table["columns"])


class TestExtSemantics:
    @pytest.fixture(scope="class")
    def res(self, paper_env):
        return ext_semantics.run(paper_env, apps=("BT",), n_samples=60)

    def test_rows_cover_all_cells(self, res):
        assert len(res.rows) == 4  # 1 app x 2 deadlines x 2 semantics

    def test_persistent_not_more_expensive(self, res):
        rows = res.data["rows"]
        for dl in ("loose", "tight"):
            assert (
                rows[f"BT:{dl}:persistent"]["cost"]
                <= rows[f"BT:{dl}:single-shot"]["cost"] + 0.05
            )

    def test_persistent_not_faster(self, res):
        rows = res.data["rows"]
        for dl in ("loose", "tight"):
            assert (
                rows[f"BT:{dl}:persistent"]["time"]
                >= rows[f"BT:{dl}:single-shot"]["time"] - 0.05
            )


class TestExtCorrelation:
    def test_two_point_sweep(self, paper_env):
        res = ext_correlation.run(
            paper_env, correlations=(0.0, 1.0), n_samples=50
        )
        rows = res.data["rows"]
        assert set(rows) == {0.0, 1.0}
        # full correlation makes the single-group plan strictly worse
        assert rows[1.0]["single"] >= rows[0.0]["single"] - 0.05
        # the replicated plan keeps completing on spot
        assert rows[1.0]["replicated_done"] >= 0.8
