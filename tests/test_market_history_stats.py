"""History store and stats tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.market import stats
from repro.market.history import MarketKey, SpotPriceHistory
from repro.market.presets import build_history, market_params, paper_market_keys
from repro.market.trace import SpotPriceTrace


class TestMarketKey:
    def test_ordering_and_str(self):
        a = MarketKey("m1.small", "us-east-1a")
        b = MarketKey("m1.small", "us-east-1b")
        assert a < b
        assert str(a) == "m1.small@us-east-1a"

    def test_hashable(self):
        assert len({MarketKey("a", "z"), MarketKey("a", "z")}) == 1


class TestHistory:
    def test_add_get(self, flat_trace):
        h = SpotPriceHistory()
        key = MarketKey("m1.small", "us-east-1a")
        h.add(key, flat_trace)
        assert h.get(key) is flat_trace
        assert key in h and len(h) == 1

    def test_get_missing_raises(self):
        with pytest.raises(TraceError):
            SpotPriceHistory().get(MarketKey("x", "y"))

    def test_extend_concatenates(self, flat_trace, step_trace):
        h = SpotPriceHistory()
        key = MarketKey("m1.small", "us-east-1a")
        h.extend(key, step_trace)
        h.extend(key, flat_trace)
        assert h.get(key).duration == pytest.approx(24.0 + 240.0)

    def test_window(self, step_trace):
        h = SpotPriceHistory()
        key = MarketKey("m1.small", "us-east-1a")
        h.add(key, step_trace)
        assert h.window(key, 8.0, 20.0).mean_price() == pytest.approx(0.05)

    def test_keys_sorted(self, flat_trace):
        h = SpotPriceHistory()
        h.add(MarketKey("b", "z"), flat_trace)
        h.add(MarketKey("a", "z"), flat_trace)
        assert [k.instance_type for k in h.keys()] == ["a", "b"]


class TestHistogram:
    def test_time_weighted(self, step_trace):
        edges = np.array([0.0, 0.2, 1.0, 3.0])
        hist = stats.time_weighted_histogram(step_trace, edges)
        assert hist.sum() == pytest.approx(1.0)
        assert hist[0] == pytest.approx(17 / 24)  # 0.10 and 0.05
        assert hist[1] == pytest.approx(3 / 24)  # 0.50
        assert hist[2] == pytest.approx(4 / 24)  # 2.0

    def test_bad_edges(self, step_trace):
        with pytest.raises(ConfigurationError):
            stats.time_weighted_histogram(step_trace, np.array([1.0]))
        with pytest.raises(ConfigurationError):
            stats.time_weighted_histogram(step_trace, np.array([1.0, 0.5]))

    def test_out_of_range_prices_clipped(self, step_trace):
        edges = np.array([0.08, 0.3])  # excludes 0.05 and 2.0
        hist = stats.time_weighted_histogram(step_trace, edges)
        assert hist.sum() == pytest.approx(1.0)


class TestStability:
    def test_daily_slices(self, flat_trace):
        days = stats.daily_slices(flat_trace, 4)
        assert len(days) == 4
        assert all(d.duration == pytest.approx(24.0) for d in days)

    def test_daily_slices_too_short(self, step_trace):
        with pytest.raises(TraceError):
            stats.daily_slices(step_trace, 2)

    def test_total_variation_bounds(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert stats.total_variation_distance(p, q) == 1.0
        assert stats.total_variation_distance(p, p) == 0.0

    def test_stable_distribution_on_preset_market(self):
        """Figure 2: day-over-day distributions agree on a preset market."""
        h = build_history(24.0 * 6, seed=3)
        trace = h.get(MarketKey("m1.medium", "us-east-1a"))
        m = stats.distribution_stability(trace, 4)
        off_diag = m[np.triu_indices(4, 1)]
        assert np.all(off_diag <= 0.35)
        assert np.allclose(m, m.T)

    def test_relative_difference(self):
        assert stats.relative_difference(2.0, 1.0) == 0.5
        assert stats.relative_difference(0.0, 0.0) == 0.0
        assert stats.relative_difference(0.0, 1.0) == np.inf


class TestSummary:
    def test_trace_summary(self, step_trace):
        s = stats.TraceSummary.of(step_trace, spike_threshold=1.0)
        assert s.min_price == 0.05 and s.max_price == 2.0
        assert s.n_changes == 3
        assert s.spike_fraction == pytest.approx(4 / 24)
        assert s.coefficient_of_variation > 0


class TestPresets:
    def test_all_paper_markets_present(self):
        h = build_history(48.0, seed=1)
        assert len(h) == 12
        for key in paper_market_keys():
            assert key in h

    def test_zone_personalities_differ(self):
        h = build_history(24.0 * 14, seed=1)
        spiky = h.get(MarketKey("m1.medium", "us-east-1a"))
        calm = h.get(MarketKey("m1.medium", "us-east-1b"))
        assert spiky.max_price() > 5 * calm.max_price()

    def test_base_price_fraction_of_ondemand(self):
        p = market_params("cc2.8xlarge", "us-east-1c")
        assert 0.1 < p.base_price / 2.0 < 0.5

    def test_markets_reproducible_and_independent_of_set(self):
        h1 = build_history(48.0, seed=5)
        h2 = build_history(48.0, seed=5, instance_types=("m1.medium",))
        key = MarketKey("m1.medium", "us-east-1a")
        assert h1.get(key) == h2.get(key)
