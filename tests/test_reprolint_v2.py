"""Tests for the reprolint v2 whole-program engine (DESIGN.md §9).

Covers the layers PR 5 added on top of the per-file framework: the
project graph (symbols, imports, call edges, reachability), the
unit-dataflow lattice behind R003 — including the regression fixture
proving the v1 suffix-only engine misses what the dataflow engine
flags — the project-scope rules R007–R009, the ``--fix`` autofixer and
its idempotence, the content-hash incremental cache, and the SARIF
reporter round-trip.
"""

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    ProjectGraph,
    fix_paths,
    get_rules,
    run_lint,
)
from repro.analysis.dataflow import infer_dim
from repro.analysis.engine import discover, load_unit
from repro.analysis.reporters import report_sarif
from repro.analysis.symbols import module_name_for

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_tree(tmp_path, files):
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text))
    return tmp_path


def lint_tree(tmp_path, files, select=None, baseline=None, **kwargs):
    """Write ``files`` under a tmp project and lint the whole src tree."""
    write_tree(tmp_path, files)
    return run_lint(
        [tmp_path / "src"],
        root=tmp_path,
        rules=get_rules(select),
        baseline=baseline,
        **kwargs,
    )


def build_graph(tmp_path, files):
    write_tree(tmp_path, files)
    units = [
        load_unit(p, tmp_path) for p in discover([tmp_path / "src"])
    ]
    return ProjectGraph.build(units)


def rule_ids(result):
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------------
# project graph: symbols, imports, call edges, reachability
# ----------------------------------------------------------------------
class TestProjectGraph:
    def test_module_names(self):
        assert module_name_for("src/repro/core/model.py") == "repro.core.model"
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"
        assert module_name_for("tools/thing.py") == "tools.thing"

    def test_cross_module_call_edge_via_import_alias(self, tmp_path):
        graph = build_graph(tmp_path, {
            "src/repro/core/a.py": """
                from repro.core import b

                def caller():
                    return b.helper()
            """,
            "src/repro/core/b.py": """
                def helper():
                    return 1
            """,
        })
        key = ("repro.core.a", "caller")
        assert ("repro.core.b", "helper") in graph.call_edges[key]
        assert graph.imports_module("repro.core.a", "repro.core.b")

    def test_relative_import_resolution(self, tmp_path):
        graph = build_graph(tmp_path, {
            "src/repro/core/__init__.py": "",
            "src/repro/core/a.py": """
                from .b import helper

                def caller():
                    return helper()
            """,
            "src/repro/core/b.py": """
                def helper():
                    return 1
            """,
        })
        assert ("repro.core.b", "helper") in graph.call_edges[
            ("repro.core.a", "caller")
        ]

    def test_reexport_following(self, tmp_path):
        graph = build_graph(tmp_path, {
            "src/repro/pkg/__init__.py": "from .impl import helper\n",
            "src/repro/pkg/impl.py": "def helper():\n    return 1\n",
            "src/repro/use.py": """
                from repro import pkg

                def caller():
                    return pkg.helper()
            """,
        })
        assert ("repro.pkg.impl", "helper") in graph.call_edges[
            ("repro.use", "caller")
        ]

    def test_method_call_through_self(self, tmp_path):
        graph = build_graph(tmp_path, {
            "src/repro/core/c.py": """
                class Thing:
                    def a(self):
                        return self.b()

                    def b(self):
                        return 1
            """,
        })
        assert ("repro.core.c", "Thing.b") in graph.call_edges[
            ("repro.core.c", "Thing.a")
        ]

    def test_reaching_is_transitive(self, tmp_path):
        graph = build_graph(tmp_path, {
            "src/repro/core/chain.py": """
                def sink():
                    return 0

                def mid():
                    return sink()

                def top():
                    return mid()

                def unrelated():
                    return 2
            """,
        })
        reach = graph.reaching([("repro.core.chain", "sink")])
        assert ("repro.core.chain", "top") in reach
        assert ("repro.core.chain", "mid") in reach
        assert ("repro.core.chain", "unrelated") not in reach

    def test_unresolvable_call_produces_no_edge(self, tmp_path):
        graph = build_graph(tmp_path, {
            "src/repro/core/dyn.py": """
                def caller(fn):
                    return fn()
            """,
        })
        assert graph.call_edges[("repro.core.dyn", "caller")] == set()


# ----------------------------------------------------------------------
# unit dataflow: the lattice behind R003 v2
# ----------------------------------------------------------------------
class TestUnitDataflow:
    def test_v1_regression_fixture_cross_assignment(self, tmp_path):
        """The acceptance fixture: v1's suffix pass is provably silent on
        a drift routed through a neutral intermediate; the dataflow
        engine flags it."""
        source = """
            def total(cost_usd, runtime_hours):
                extra = runtime_hours
                return cost_usd + extra
        """
        # v1 oracle: `extra` is neutral, so the suffix-only engine saw
        # dims (dollars, None) and could not fire.
        import ast as _ast
        tree = _ast.parse(textwrap.dedent(source))
        binop = next(
            n for n in _ast.walk(tree) if isinstance(n, _ast.BinOp)
        )
        assert infer_dim(binop.left) == "dollars"
        assert infer_dim(binop.right) is None  # v1 verdict: no finding
        # v2 verdict: the assignment taught `extra` hours.
        result = lint_tree(
            tmp_path, {"src/repro/core/mod.py": source}, select=["R003"]
        )
        assert rule_ids(result) == ["R003"]
        assert "mixes dollars and hours" in result.findings[0].message

    def test_augassign_through_intermediate(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": """
                def accumulate(total_dollars, runtime_hours):
                    tmp = runtime_hours
                    total_dollars += tmp
                    return total_dollars
            """,
        }, select=["R003"])
        assert rule_ids(result) == ["R003"]
        assert "accumulates hours" in result.findings[0].message

    def test_return_against_function_suffix(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": """
                def total_usd(runtime_hours):
                    return runtime_hours
            """,
        }, select=["R003"])
        assert rule_ids(result) == ["R003"]
        assert "declares dollars by suffix but returns" in (
            result.findings[0].message
        )

    def test_call_return_dim_resolved_through_project_graph(self, tmp_path):
        """The callee has no unit suffix — only its *body* reveals the
        return dimension, and only the graph connects the two files."""
        result = lint_tree(tmp_path, {
            "src/repro/core/a.py": """
                from repro.core import b

                def total(cost_usd):
                    return cost_usd + b.elapsed()
            """,
            "src/repro/core/b.py": """
                def elapsed():
                    start_hours = 1.0
                    return start_hours + 2.0
            """,
        }, select=["R003"])
        assert rule_ids(result) == ["R003"]
        assert "mixes dollars and hours" in result.findings[0].message

    def test_assign_suffix_conflict_carries_rename_fix(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": """
                def f(runtime_hours):
                    wall_s = runtime_hours
                    return wall_s
            """,
        }, select=["R003"])
        assert rule_ids(result) == ["R003"]
        assert result.findings[0].fix == {
            "op": "rename", "name": "wall_s", "to": "wall_hours",
        }

    def test_rates_and_unknowns_stay_silent(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": """
                def bill(price_per_hour, runtime_hours):
                    cost_usd = price_per_hour * runtime_hours
                    unknown = external()
                    return cost_usd + unknown
            """,
        }, select=["R003"])
        assert result.findings == []

    _MIX_ARG_CALLER = """
        from repro.core import b

        def schedule(runtime_hours):
            budget = runtime_hours
            return b.spend(budget)
    """
    _MIX_ARG_CALLEE = """
        def spend(cost_usd):
            return cost_usd * 1.1
    """

    def test_mix_arg_regression_fixture_cross_module(self, tmp_path):
        """The argument-binding fixture: the caller has no mixed
        arithmetic, no suffix conflict and no return drift — the only
        evidence is an hours-valued variable bound to a dollars-named
        parameter in another module.  The intraprocedural engine is
        provably silent; only the caller→callee binding check fires."""
        from repro.analysis.dataflow import analyze_scope, default_call_resolver
        import ast as _ast

        # Oracle: the same scope without a param_resolver (the engine as
        # it stood before the binding check) produces zero issues.
        tree = _ast.parse(textwrap.dedent(self._MIX_ARG_CALLER))
        fn = next(
            n for n in _ast.walk(tree) if isinstance(n, _ast.FunctionDef)
        )
        silent = analyze_scope(
            fn.body,
            params=("runtime_hours",),
            resolver=default_call_resolver,
        )
        assert silent.issues == []

        result = lint_tree(tmp_path, {
            "src/repro/core/a.py": self._MIX_ARG_CALLER,
            "src/repro/core/b.py": self._MIX_ARG_CALLEE,
        }, select=["R003"])
        assert rule_ids(result) == ["R003"]
        assert "bound to parameter 'cost_usd'" in result.findings[0].message
        assert "hours" in result.findings[0].message

    def test_mix_arg_keyword_binding(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/a.py": """
                from repro.core import b

                def schedule(runtime_hours):
                    return b.spend(cost_usd=runtime_hours)
            """,
            "src/repro/core/b.py": self._MIX_ARG_CALLEE,
        }, select=["R003"])
        assert rule_ids(result) == ["R003"]
        assert "bound to parameter 'cost_usd'" in result.findings[0].message

    def test_mix_arg_star_splat_stops_positional_binding(self, tmp_path):
        """Past a ``*args`` splat the alignment is unknowable — the
        check must stay silent rather than guess."""
        result = lint_tree(tmp_path, {
            "src/repro/core/a.py": """
                from repro.core import b

                def schedule(extras, runtime_hours):
                    return b.combine(*extras, runtime_hours)
            """,
            "src/repro/core/b.py": """
                def combine(cost_usd, budget_usd=0.0):
                    return cost_usd + budget_usd
            """,
        }, select=["R003"])
        assert result.findings == []

    def test_mix_arg_matching_and_unknown_dims_stay_silent(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/a.py": """
                from repro.core import b

                def schedule(cost_usd, mystery):
                    b.spend(cost_usd)
                    b.spend(mystery)
            """,
            "src/repro/core/b.py": self._MIX_ARG_CALLEE,
        }, select=["R003"])
        assert result.findings == []


# ----------------------------------------------------------------------
# R007 — ledger-audit coverage
# ----------------------------------------------------------------------
_R007_BASE = {
    "src/repro/obs/__init__.py": """
        def audit_run_result(result):
            return result
    """,
    "src/repro/cloud/billing.py": """
        class CostLedger:
            pass
    """,
    "src/repro/core/exec_good.py": """
        from repro.cloud.billing import CostLedger
        from repro import obs

        def observe(result):
            return obs.audit_run_result(result)

        def run_good():
            ledger = CostLedger()
            return observe(ledger)
    """,
}


class TestR007LedgerAudit:
    def test_unaudited_construction_flagged(self, tmp_path):
        files = dict(_R007_BASE)
        files["src/repro/core/exec_bad.py"] = """
            from repro.cloud.billing import CostLedger

            def run_bad():
                ledger = CostLedger()
                return ledger
        """
        result = lint_tree(tmp_path, files, select=["R007"])
        assert rule_ids(result) == ["R007"]
        assert result.findings[0].path == "src/repro/core/exec_bad.py"
        assert "run_bad()" in result.findings[0].message

    def test_audited_construction_quiet_even_indirectly(self, tmp_path):
        result = lint_tree(tmp_path, dict(_R007_BASE), select=["R007"])
        assert result.findings == []

    def test_billing_module_and_tests_exempt(self, tmp_path):
        files = dict(_R007_BASE)
        files["src/repro/cloud/billing.py"] = """
            class CostLedger:
                pass

            def model():
                return CostLedger()
        """
        files["src/repro/core/tests/test_x.py"] = """
            from repro.cloud.billing import CostLedger

            def test_build():
                assert CostLedger() is not None
        """
        result = lint_tree(tmp_path, files, select=["R007"])
        assert result.findings == []

    def test_real_tree_has_sites_and_all_are_audited(self):
        """Guards against the rule passing vacuously on src/: it must
        *see* CostLedger constructions there and prove them audited."""
        from repro.analysis.rules.r007_ledger_audit import (
            LedgerAuditCoverage, _EXEMPT_PATH_RE,
        )

        units = [
            load_unit(p, REPO_ROOT)
            for p in discover([REPO_ROOT / "src"])
        ]
        graph = ProjectGraph.build(units)
        rule = LedgerAuditCoverage()
        sites = 0
        for info in graph.functions.values():
            syms = graph.modules.get(info.module)
            if syms is None or _EXEMPT_PATH_RE.search(syms.relpath):
                continue
            sites += len(rule._construction_sites(info.node, syms))
        assert sites >= 3  # replay, batch_replay x2


# ----------------------------------------------------------------------
# R008 — experiment-registry hygiene
# ----------------------------------------------------------------------
_R008_BASE = {
    "src/repro/experiments/runner.py": """
        from repro.experiments import fig1_thing

        def _all_experiments():
            return [fig1_thing.run()]
    """,
    "src/repro/experiments/fig1_thing.py": """
        def run():
            return 1
    """,
    "src/repro/experiments/common.py": """
        def shared():
            return 0
    """,
}


class TestR008Registry:
    def test_orphan_experiment_flagged(self, tmp_path):
        files = dict(_R008_BASE)
        files["src/repro/experiments/fig2_orphan.py"] = """
            def run():
                return 2
        """
        result = lint_tree(tmp_path, files, select=["R008"])
        assert rule_ids(result) == ["R008"]
        assert result.findings[0].path == (
            "src/repro/experiments/fig2_orphan.py"
        )

    def test_registered_and_infrastructure_quiet(self, tmp_path):
        result = lint_tree(tmp_path, dict(_R008_BASE), select=["R008"])
        assert result.findings == []

    def test_silent_without_a_registry_in_scope(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/experiments/fig1_thing.py": "def run():\n    return 1\n",
        }, select=["R008"])
        assert result.findings == []


# ----------------------------------------------------------------------
# R009 — docstring units vs suffix conventions
# ----------------------------------------------------------------------
class TestR009DocUnits:
    def test_return_field_conflict_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": '''
                def transfer_hours(size):
                    """Transfer time.

                    :returns: wall-clock time in seconds.
                    """
                    return size / 100.0
            ''',
        }, select=["R009"])
        assert rule_ids(result) == ["R009"]
        assert "says it returns seconds" in result.findings[0].message

    def test_summary_phrase_conflict_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": '''
                def runtime_s(n):
                    """Estimated runtime in hours."""
                    return n * 2.0
            ''',
        }, select=["R009"])
        assert rule_ids(result) == ["R009"]

    def test_param_field_conflict_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": '''
                def bill(runtime_hours):
                    """Bill a run.

                    :param runtime_hours: elapsed seconds of compute.
                    """
                    return runtime_hours
            ''',
        }, select=["R009"])
        assert rule_ids(result) == ["R009"]
        assert "runtime_hours" in result.findings[0].message

    def test_agreeing_and_ambiguous_docs_quiet(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/mod.py": '''
                def cost_usd(runtime_hours):
                    """Cost in dollars.

                    :param runtime_hours: elapsed hours of compute.
                    :returns: the bill in dollars.
                    """
                    return runtime_hours * 0.1

                def rate(x):
                    """Dollars per hour conversion (mentions both units)."""
                    return x
            ''',
        }, select=["R009"])
        assert result.findings == []


# ----------------------------------------------------------------------
# --fix autofixer
# ----------------------------------------------------------------------
class TestFixers:
    def test_rename_and_zero_guard_applied_and_idempotent(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/core/mod.py": """
                def total(cost_usd):
                    wall_hours = elapsed_s()
                    if cost_usd == 0.0:
                        return 0.0
                    return wall_hours

                def elapsed_s():
                    return 3.0
            """,
        })
        target = tmp_path / "src/repro/core/mod.py"
        report = fix_paths(
            [tmp_path / "src"], root=tmp_path,
            rules=get_rules(["R003", "R005"]),
        )
        fixed = target.read_text()
        assert "wall_s = elapsed_s()" in fixed
        assert "cost_usd <= 0.0" in fixed
        assert len(report.applied) == 2
        # Idempotence is *checked*, not assumed: a second sweep applies
        # nothing and the file is bit-identical.
        again = fix_paths(
            [tmp_path / "src"], root=tmp_path,
            rules=get_rules(["R003", "R005"]),
        )
        assert again.applied == []
        assert target.read_text() == fixed

    def test_parameter_and_closure_renames_refused(self, tmp_path):
        source = textwrap.dedent("""
            def keep(t_hours):
                t_hours = budget_usd()
                return t_hours

            def closure():
                spend_hours = budget_usd()

                def inner():
                    return spend_hours
                return inner()

            def budget_usd():
                return 1.0
        """)
        write_tree(tmp_path, {"src/repro/core/mod.py": source})
        report = fix_paths(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(["R003"])
        )
        assert report.applied == []
        assert len(report.refused) == 2
        reasons = " | ".join(e.detail for e in report.refused)
        assert "parameter" in reasons
        assert "nested function" in reasons
        assert (tmp_path / "src/repro/core/mod.py").read_text() == source

    def test_fix_never_touches_baselined_findings(self, tmp_path):
        source = textwrap.dedent("""
            def sentinel(granularity_hours):
                if granularity_hours == 0.0:
                    return True
                return False
        """)
        write_tree(tmp_path, {"src/repro/core/mod.py": source})
        make_baseline = lambda: Baseline([BaselineEntry(
            "R005", "src/repro/core/mod.py",
            "if granularity_hours == 0.0:",
            "documented sentinel: 0 means continuous billing",
        )])
        report = fix_paths(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(["R005"]),
            baseline_factory=make_baseline,
        )
        assert report.applied == []
        assert (tmp_path / "src/repro/core/mod.py").read_text() == source

    def test_fix_suppress_scaffolds_and_relint_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/core/mod.py": """
                def keep(t_hours):
                    t_hours = budget_usd()
                    return t_hours

                def budget_usd():
                    return 1.0
            """,
        })
        report = fix_paths(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(["R003"]),
            suppress=True,
        )
        text = (tmp_path / "src/repro/core/mod.py").read_text()
        assert "# reprolint: disable=R003 -- TODO: justify" in text
        assert report.remaining == 0
        relint = run_lint(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(["R003"])
        )
        assert relint.findings == []


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
_CACHE_FILES = {
    "src/repro/core/a.py": """
        from repro.core import b

        def total(cost_usd):
            return cost_usd + b.elapsed()
    """,
    "src/repro/core/b.py": """
        def elapsed():
            start_hours = 1.0
            return start_hours + 2.0
    """,
    "src/repro/core/c.py": """
        import random
    """,
}


class TestIncrementalCache:
    def test_cold_then_fully_warm_replay(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = lint_tree(tmp_path, _CACHE_FILES, cache_path=cache)
        assert cold.cache_mode == "cold"
        warm = run_lint(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(),
            cache_path=cache,
        )
        assert warm.cache_mode == "full"
        assert warm.files_replayed == warm.files_checked == 3
        assert [f.to_json() for f in warm.findings] == [
            f.to_json() for f in cold.findings
        ]

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        cache = tmp_path / "cache.json"
        lint_tree(tmp_path, _CACHE_FILES, cache_path=cache)
        (tmp_path / "src/repro/core/c.py").write_text(
            "import random\nimport random\n"
        )
        partial = run_lint(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(),
            cache_path=cache,
        )
        assert partial.cache_mode == "partial"
        assert partial.files_replayed == 2  # a.py and b.py replayed
        assert [
            f.rule for f in partial.findings
            if f.path == "src/repro/core/c.py"
        ].count("R001") >= 2  # the new import was actually re-linted

    def test_cross_file_change_recomputes_project_findings(self, tmp_path):
        """a.py is byte-identical, but its R003 finding depends on the
        *callee's* body in b.py — the cache must not replay it."""
        cache = tmp_path / "cache.json"
        first = lint_tree(
            tmp_path, _CACHE_FILES, select=["R003"], cache_path=cache
        )
        assert rule_ids(first) == ["R003"]  # dollars + hours-returning call
        (tmp_path / "src/repro/core/b.py").write_text(textwrap.dedent("""
            def elapsed():
                start_usd = 1.0
                return start_usd + 2.0
        """))
        second = run_lint(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(["R003"]),
            cache_path=cache,
        )
        assert second.findings == []  # now dollars + dollars: clean

    def test_rule_selection_changes_engine_fingerprint(self, tmp_path):
        cache = tmp_path / "cache.json"
        lint_tree(tmp_path, _CACHE_FILES, select=["R001"], cache_path=cache)
        other = run_lint(
            [tmp_path / "src"], root=tmp_path, rules=get_rules(["R003"]),
            cache_path=cache,
        )
        assert other.cache_mode == "cold"  # different rules, no replay


# ----------------------------------------------------------------------
# SARIF reporter
# ----------------------------------------------------------------------
class TestSarif:
    def test_round_trip_matches_findings(self, tmp_path):
        baseline = Baseline([BaselineEntry(
            "R001", "src/repro/core/c.py", "import random",
            "kept for the fixture",
        )])
        result = lint_tree(tmp_path, _CACHE_FILES, baseline=baseline)
        buf = io.StringIO()
        report_sarif(result, get_rules(), buf, root=tmp_path)
        doc = json.loads(buf.getvalue())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_index = {
            r["id"]: i
            for i, r in enumerate(run["tool"]["driver"]["rules"])
        }
        assert set(rule_index) >= {"R001", "R003", "R007", "R008", "R009"}
        new = [r for r in run["results"] if not r.get("suppressions")]
        suppressed = [r for r in run["results"] if r.get("suppressions")]
        assert len(new) == len(result.findings)
        assert len(suppressed) == len(result.baselined) == 1
        for res, finding in zip(new, result.findings):
            assert res["ruleId"] == finding.rule
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == finding.path
            assert loc["region"]["startLine"] == finding.line
            assert loc["region"]["startColumn"] == finding.col + 1
            assert run["tool"]["driver"]["rules"][res["ruleIndex"]][
                "id"
            ] == finding.rule


# ----------------------------------------------------------------------
# CLI: --prune-baseline
# ----------------------------------------------------------------------
class TestPruneBaseline:
    def run_cli(self, *args, cwd):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=cwd, env=env,
        )

    def test_prune_drops_only_stale_entries(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/mod.py": "import random\n"})
        baseline_path = tmp_path / "reprolint_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [
                {"rule": "R001", "path": "src/repro/core/mod.py",
                 "line": 1, "code": "import random",
                 "reason": "still live — must survive the prune"},
                {"rule": "R005", "path": "src/repro/core/gone.py",
                 "line": 9, "code": "if x == 0.0:",
                 "reason": "file was deleted — stale"},
            ],
        }))
        proc = self.run_cli(
            "src", "--root", str(tmp_path), "--prune-baseline", cwd=tmp_path
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "pruned 1 stale" in proc.stdout
        after = json.loads(baseline_path.read_text())
        assert len(after["entries"]) == 1
        assert after["entries"][0]["rule"] == "R001"
        assert "must survive" in after["entries"][0]["reason"]

    def test_prune_noop_when_nothing_stale(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/mod.py": "import random\n"})
        baseline_path = tmp_path / "reprolint_baseline.json"
        before = json.dumps({
            "version": 1,
            "entries": [
                {"rule": "R001", "path": "src/repro/core/mod.py",
                 "line": 1, "code": "import random", "reason": "live"},
            ],
        })
        baseline_path.write_text(before)
        proc = self.run_cli(
            "src", "--root", str(tmp_path), "--prune-baseline", cwd=tmp_path
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no stale entries" in proc.stdout
        assert baseline_path.read_text() == before


# ----------------------------------------------------------------------
# bench artifact
# ----------------------------------------------------------------------
class TestLintBench:
    def test_bench_lint_records_warm_speedup(self):
        doc = json.loads((REPO_ROOT / "BENCH_lint.json").read_text())
        assert doc["suite"] == "lint"
        engine = doc["metrics"]["engine"]
        assert engine["speedup"] >= 3.0, (
            "warm cache replay must be at least 3x faster than a cold "
            f"parse; recorded {engine['speedup']}x"
        )
        assert doc["primary"]["name"] == "engine.warm_s"
