"""Regime-switching generator tests."""

import numpy as np
import pytest

from repro.market.generator import (
    PRICE_FLOOR,
    RegimeSwitchingGenerator,
    SpotMarketParams,
    generate_market,
)


def params(**kw) -> SpotMarketParams:
    base = dict(base_price=0.1, spike_rate=0.05, spike_magnitude=20.0)
    base.update(kw)
    return SpotMarketParams(**base)


class TestParams:
    def test_rejects_nonpositive_base(self):
        with pytest.raises(Exception):
            SpotMarketParams(base_price=0.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(Exception):
            SpotMarketParams(base_price=0.1, spike_rate=-1.0)


class TestGeneration:
    def test_reproducible_from_seed(self):
        a = generate_market(params(), 72.0, seed=5)
        b = generate_market(params(), 72.0, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_market(params(), 72.0, seed=5)
        b = generate_market(params(), 72.0, seed=6)
        assert a != b

    def test_window_bounds(self):
        tr = generate_market(params(), 100.0, seed=1, start_time=50.0)
        assert tr.start_time == 50.0
        assert tr.end_time == pytest.approx(150.0)

    def test_prices_above_floor(self):
        tr = generate_market(params(calm_volatility=0.5), 200.0, seed=2)
        assert tr.min_price() >= PRICE_FLOOR

    def test_calm_market_stays_near_base(self):
        tr = generate_market(
            params(spike_rate=0.0, calm_volatility=0.02), 240.0, seed=3
        )
        assert 0.05 <= tr.mean_price() <= 0.2
        assert tr.max_price() < 0.5

    def test_spiky_market_exceeds_base(self):
        tr = generate_market(
            params(spike_rate=0.1, spike_magnitude=50.0), 480.0, seed=4
        )
        assert tr.max_price() > 1.0  # at least one 10x+ spike in 20 days

    def test_spikes_are_transient(self):
        tr = generate_market(
            params(spike_rate=0.05, spike_magnitude=50.0, spike_duration_mean=0.5),
            480.0,
            seed=4,
        )
        # Most of the time the market is calm (paper Figure 1 shape).
        assert tr.fraction_below(0.5) > 0.8

    def test_compression_removes_constant_runs(self):
        tr = generate_market(params(spike_rate=0.0, calm_change_rate=0.01), 240.0, seed=9)
        # ~2880 grid points but only a handful of changes survive.
        assert tr.n_segments < 100

    def test_zero_duration_rejected(self):
        gen = RegimeSwitchingGenerator(params(), np.random.default_rng(0))
        with pytest.raises(Exception):
            gen.generate(0.0)

    def test_generator_instance_advances_state(self):
        gen = RegimeSwitchingGenerator(params(), np.random.default_rng(0))
        a = gen.generate(48.0)
        b = gen.generate(48.0)
        assert a != b  # consecutive windows are different sample paths
