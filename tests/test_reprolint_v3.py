"""Tests for reprolint v3: process-safety & determinism analysis.

Covers the escape analysis (boundary sites, worker-reachable closure,
clearer sanctions), the four new rules R010–R013 with positive and
negative fixtures, the container-element dataflow extension feeding
R003/R012, the git-aware ``--changed`` CLI mode, the enriched SARIF
descriptors, and — most importantly — meta-tests that mutate copies of
the *real* ``repro.execution`` modules and assert each rule fires on
the exact broken line: the linter guards the code, so the tests guard
the linter against the code drifting out from under it.
"""

import json
import subprocess
import sys
import textwrap
from io import StringIO
from pathlib import Path

import pytest

from repro.analysis import get_rules, run_lint
from repro.analysis.reporters import report_sarif

REPO_ROOT = Path(__file__).resolve().parents[1]
EXECUTION = REPO_ROOT / "src" / "repro" / "execution"


def lint_project(tmp_path, files, select=None, cache_path=None):
    """Write every ``relpath -> source`` pair and lint them together."""
    paths = []
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text))
        paths.append(p)
    return run_lint(
        paths, root=tmp_path, rules=get_rules(select), cache_path=cache_path
    )


def rule_ids(result):
    return [f.rule for f in result.findings]


#: A submit boundary: any graph-resolvable callable handed to a
#: poolishly-named receiver's .submit() becomes a worker entry.
DRIVER = """
    from repro.execution.jobs import job

    def run(pool, cells):
        futures = [pool.submit(job, 0, cell) for cell in cells]
        return [f.result() for f in futures]
    """


# ----------------------------------------------------------------------
# R010 — worker-side module-global writes
# ----------------------------------------------------------------------
class TestR010WorkerGlobals:
    def test_flags_worker_side_mutation(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    _SEEN = {}

                    def job(seed, cell):
                        _SEEN[cell] = seed
                        return seed
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R010"],
        )
        assert rule_ids(result) == ["R010"]
        finding = result.findings[0]
        assert finding.path.endswith("jobs.py")
        assert "_SEEN" in finding.message
        assert "worker-reachable" in finding.message

    def test_flags_global_rebind(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    _LAST = None

                    def job(seed, cell):
                        global _LAST
                        _LAST = seed
                        return seed
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R010"],
        )
        assert rule_ids(result) == ["R010"]
        assert "rebinds" in result.findings[0].message

    def test_transitive_callee_is_checked(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    _SEEN = {}

                    def _record(cell):
                        _SEEN[cell] = True

                    def job(seed, cell):
                        _record(cell)
                        return seed
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R010"],
        )
        assert rule_ids(result) == ["R010"]
        assert "_record()" in result.findings[0].message

    def test_registered_clearer_sanctions_the_global(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    from repro.core.two_level import register_cache_clearer

                    _SEEN = {}

                    def job(seed, cell):
                        _SEEN[cell] = seed
                        return seed

                    def clear_seen():
                        _SEEN.clear()

                    register_cache_clearer(clear_seen)
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R010"],
        )
        assert result.findings == []

    def test_unsubmitted_function_is_quiet(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    _SEEN = {}

                    def job(seed, cell):
                        _SEEN[cell] = seed
                        return seed
                    """,
            },
            select=["R010"],
        )
        assert result.findings == []

    def test_local_shadow_is_not_a_global_write(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    _SEEN = {}

                    def job(seed, cell):
                        _SEEN = {}
                        _SEEN[cell] = seed
                        return _SEEN
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R010"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R011 — shm lifecycle pairing
# ----------------------------------------------------------------------
class TestR011ShmLifecycle:
    def test_created_block_never_closed(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    import numpy as np
                    from multiprocessing import shared_memory

                    def make(n):
                        shm = shared_memory.SharedMemory(create=True, size=n)
                        buf = np.ndarray((n,), buffer=shm.buf)
                        buf[:] = 0.0
                    """,
            },
            select=["R011"],
        )
        assert rule_ids(result) == ["R011"]
        assert "never reaches a .close()" in result.findings[0].message

    def test_created_block_closed_but_not_unlinked(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    from multiprocessing import shared_memory

                    def make(n):
                        shm = shared_memory.SharedMemory(create=True, size=n)
                        shm.close()
                    """,
            },
            select=["R011"],
        )
        assert rule_ids(result) == ["R011"]
        assert "/dev/shm leaks" in result.findings[0].message

    def test_attach_without_tracker_guard(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    from multiprocessing import shared_memory

                    def attach(name):
                        shm = shared_memory.SharedMemory(name=name)
                        shm.close()
                    """,
            },
            select=["R011"],
        )
        assert rule_ids(result) == ["R011"]
        assert "bpo-38119" in result.findings[0].message

    def test_attach_with_tracker_guard_is_quiet(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    from multiprocessing import resource_tracker
                    from multiprocessing import shared_memory

                    def attach(name, owner_tracker_pid, my_tracker_pid):
                        shm = shared_memory.SharedMemory(name=name)
                        if my_tracker_pid != owner_tracker_pid:
                            resource_tracker.unregister(shm._name, "shared_memory")
                        shm.close()
                    """,
            },
            select=["R011"],
        )
        assert result.findings == []

    def test_container_transfer_satisfies_obligation(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    from multiprocessing import shared_memory

                    _BLOCKS = []

                    def make(n):
                        shm = shared_memory.SharedMemory(create=True, size=n)
                        _BLOCKS.append(shm)

                    def teardown():
                        for shm in _BLOCKS:
                            shm.close()
                            shm.unlink()
                    """,
            },
            select=["R011"],
        )
        assert result.findings == []

    def test_escape_via_return_is_callers_problem(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    from multiprocessing import shared_memory

                    def make(n):
                        shm = shared_memory.SharedMemory(create=True, size=n)
                        return shm
                    """,
            },
            select=["R011"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R012 — stateless job payloads
# ----------------------------------------------------------------------
class TestR012StatelessJobs:
    def test_flags_wall_clock_in_worker(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    import time

                    def job(seed, cell):
                        started = time.time()
                        return (seed, started)
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R012"],
        )
        assert rule_ids(result) == ["R012"]
        assert "wall clock" in result.findings[0].message

    def test_applies_outside_r001_packages(self, tmp_path):
        # Worker reachability is the scope: repro.apps is not one of
        # R001's deterministic packages, but a job that runs there in a
        # worker is still held to the payload contract.
        result = lint_project(
            tmp_path,
            {
                "src/repro/apps/jobs.py": """
                    import time

                    def job(seed, cell):
                        return time.time()
                    """,
                "src/repro/apps/driver.py": """
                    from repro.apps.jobs import job

                    def run(pool, cells):
                        return [pool.submit(job, 0, c) for c in cells]
                    """,
            },
            select=["R012"],
        )
        assert rule_ids(result) == ["R012"]

    def test_flags_pid_derived_seed(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    import os

                    import numpy as np

                    def job(seed, cell):
                        salt = os.getpid()
                        rng = np.random.default_rng(salt)
                        return rng.uniform()
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R012"],
        )
        assert rule_ids(result) == ["R012"]
        assert "seed" in result.findings[0].message

    def test_flags_seedless_default_rng(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    import numpy as np

                    def job(seed, cell):
                        rng = np.random.default_rng()
                        return rng.uniform()
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R012"],
        )
        assert rule_ids(result) == ["R012"]
        assert "OS entropy" in result.findings[0].message

    def test_payload_unpacked_seed_is_clean(self, tmp_path):
        # The container-element dataflow satellite: args[0] is payload.
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    import numpy as np

                    def job(args):
                        seed = args[0]
                        rng = np.random.default_rng(seed)
                        return rng.uniform()
                    """,
                "src/repro/execution/driver.py": DRIVER,
            },
            select=["R012"],
        )
        assert result.findings == []

    def test_unsubmitted_function_is_quiet(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/jobs.py": """
                    import time

                    def job(seed, cell):
                        return time.time()
                    """,
            },
            select=["R012"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R013 — pid-guarded singleton reads
# ----------------------------------------------------------------------
class TestR013PidGuards:
    def test_flags_unguarded_read(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    _SHARED_POOL = None

                    def get_pool():
                        return _SHARED_POOL
                    """,
            },
            select=["R013"],
        )
        assert rule_ids(result) == ["R013"]
        assert "_SHARED_POOL" in result.findings[0].message
        assert "pid" in result.findings[0].message

    def test_guarded_read_is_quiet(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    import os

                    _SHARED_POOL = None
                    _SHARED_PID = -1

                    def get_pool():
                        global _SHARED_POOL, _SHARED_PID
                        pid = os.getpid()
                        if _SHARED_PID != pid:
                            _SHARED_POOL = object()
                            _SHARED_PID = pid
                        return _SHARED_POOL
                    """,
            },
            select=["R013"],
        )
        assert result.findings == []

    def test_registered_clearer_is_exempt(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    from repro.core.two_level import register_cache_clearer

                    _SHARED_POOL = None

                    def close_pool():
                        global _SHARED_POOL
                        if _SHARED_POOL is not None:
                            _SHARED_POOL = None

                    register_cache_clearer(close_pool)
                    """,
            },
            select=["R013"],
        )
        assert result.findings == []

    def test_plain_scalars_are_not_singletons(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/execution/mod.py": """
                    POOL_SIZE = 8

                    def size():
                        return POOL_SIZE
                    """,
            },
            select=["R013"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# Container-element dataflow (R003 regression fixtures)
# ----------------------------------------------------------------------
class TestContainerDataflow:
    def test_tuple_literal_subscript_mix(self, tmp_path):
        # Regression: before v3 the engine dropped dimensions at every
        # container literal, so packing money and hours into a tuple
        # laundered the units and this add passed silently.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(cost_usd, runtime_hours):
                        pair = (cost_usd, runtime_hours)
                        return pair[0] + pair[1]
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)

    def test_negative_index_alias(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(cost_usd, runtime_hours):
                        pair = (cost_usd, runtime_hours)
                        return pair[-1] + pair[0]
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)

    def test_dict_literal_subscript_mix(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(cost_usd, runtime_hours):
                        row = {"cost": cost_usd, "span": runtime_hours}
                        return row["cost"] + row["span"]
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)

    def test_tuple_unpack_binding(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(cost_usd, runtime_hours):
                        a, b = (cost_usd, runtime_hours)
                        return a + b
                    """,
            },
            select=["R003"],
        )
        assert "R003" in rule_ids(result)

    def test_same_dimension_elements_are_clean(self, tmp_path):
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(cost_usd, fee_usd):
                        pair = (cost_usd, fee_usd)
                        return pair[0] + pair[1]
                    """,
            },
            select=["R003"],
        )
        assert result.findings == []

    def test_mutator_invalidates_element_facts(self, tmp_path):
        # After .append the recorded indices may be stale: facts drop to
        # unknown rather than risk a wrong-index false positive.
        result = lint_project(
            tmp_path,
            {
                "src/repro/core/mod.py": """
                    def total(cost_usd, runtime_hours, extras):
                        items = [cost_usd]
                        items.extend(extras)
                        return items[0] + runtime_hours
                    """,
            },
            select=["R003"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# --changed CLI mode
# ----------------------------------------------------------------------
class TestChangedMode:
    def _git(self, cwd, *argv):
        subprocess.run(
            ["git", "-C", str(cwd), *argv],
            check=True, capture_output=True,
        )

    def _run_cli(self, cwd, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            cwd=cwd, capture_output=True, text=True,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    @pytest.fixture
    def repo(self, tmp_path):
        clean = "def span_hours(x_hours):\n    return x_hours\n"
        for rel in ("src/repro/core/a.py", "src/repro/core/b.py"):
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(clean)
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(
            tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
            "commit", "-qm", "seed",
        )
        return tmp_path

    def test_reports_only_changed_files(self, repo):
        # v4 contract: the *whole* tree is analysed (files_checked spans
        # it) but only the changed files' findings are reported.
        (repo / "src/repro/core/b.py").write_text("import random\n")
        proc = self._run_cli(
            repo, "src", "--root", str(repo), "--changed", "HEAD",
            "--format", "json",
        )
        payload = json.loads(proc.stdout)
        assert payload["files_checked"] == 2
        assert [f["rule"] for f in payload["findings"]] == ["R001"]
        assert payload["findings"][0]["path"] == "src/repro/core/b.py"
        assert proc.returncode == 1

    def test_untracked_files_are_included(self, repo):
        (repo / "src/repro/core/new.py").write_text("import random\n")
        proc = self._run_cli(
            repo, "src", "--root", str(repo), "--changed", "HEAD",
            "--format", "json",
        )
        payload = json.loads(proc.stdout)
        assert payload["files_checked"] == 3
        assert [f["rule"] for f in payload["findings"]] == ["R001"]
        assert payload["findings"][0]["path"] == "src/repro/core/new.py"

    def test_nothing_changed_short_circuits(self, repo):
        proc = self._run_cli(
            repo, "src", "--root", str(repo), "--changed", "HEAD",
            "--format", "json",
        )
        assert proc.returncode == 0
        assert "no python files changed" in proc.stdout

    def test_changed_never_writes_the_cache(self, repo):
        (repo / "src/repro/core/b.py").write_text("import random\n")
        self._run_cli(
            repo, "src", "--root", str(repo), "--changed", "HEAD",
            "--cache",
        )
        assert not (repo / ".reprolint_cache.json").exists()

    def test_changed_replays_from_a_warm_cache(self, repo):
        # A whole-tree run warms the cache; --changed may read it.
        self._run_cli(repo, "src", "--root", str(repo), "--cache")
        cache = repo / ".reprolint_cache.json"
        assert cache.exists()
        before = cache.read_text()
        (repo / "src/repro/core/b.py").write_text("import random\n")
        proc = self._run_cli(
            repo, "src", "--root", str(repo), "--changed", "HEAD",
            "--cache", "--format", "json",
        )
        payload = json.loads(proc.stdout)
        assert [f["rule"] for f in payload["findings"]] == ["R001"]
        assert cache.read_text() == before  # replayed, never rewritten


# ----------------------------------------------------------------------
# SARIF descriptor metadata
# ----------------------------------------------------------------------
class TestSarifMetadata:
    def test_descriptors_round_trip(self, tmp_path):
        result = lint_project(
            tmp_path,
            {"src/repro/core/mod.py": "import random\n"},
        )
        rules = get_rules()
        buf = StringIO()
        report_sarif(result, rules, buf, root=tmp_path)
        payload = json.loads(buf.getvalue())
        descriptors = payload["runs"][0]["tool"]["driver"]["rules"]
        by_id = {d["id"]: d for d in descriptors}
        assert set(by_id) >= {r.id for r in rules}
        for rule in rules:
            desc = by_id[rule.id]
            assert desc["fullDescription"]["text"] == rule.description
            assert desc["defaultConfiguration"]["level"] == rule.severity.value
            assert desc["helpUri"]
        # v3 rules link to the escape-analysis design section.
        for rid in ("R010", "R011", "R012", "R013"):
            assert by_id[rid]["helpUri"].endswith(
                "#13-process-safety-escape-analysis"
            )
        results = payload["runs"][0]["results"]
        assert any(r["ruleId"] == "R001" for r in results)


# ----------------------------------------------------------------------
# Incremental cache with escape rules
# ----------------------------------------------------------------------
class TestEscapeCache:
    def test_warm_replay_with_escape_rules(self, tmp_path):
        files = {
            "src/repro/execution/jobs.py": """
                _SEEN = {}

                def job(seed, cell):
                    _SEEN[cell] = seed
                    return seed
                """,
            "src/repro/execution/driver.py": DRIVER,
        }
        cache = tmp_path / "cache.json"
        cold = lint_project(tmp_path, files, select=["R010"], cache_path=cache)
        assert rule_ids(cold) == ["R010"]
        paths = [tmp_path / rel for rel in files]
        warm = run_lint(
            paths, root=tmp_path, rules=get_rules(["R010"]), cache_path=cache
        )
        assert warm.cache_mode == "full"
        assert rule_ids(warm) == ["R010"]
        assert warm.findings[0].line == cold.findings[0].line


# ----------------------------------------------------------------------
# Meta: break the real execution layer, watch the rule catch it
# ----------------------------------------------------------------------
class TestMetaRealCode:
    """Copy real modules into a tempdir, mutate one invariant, assert
    the matching rule fires on the mutated line.  The ``assert old in
    text`` guards keep these honest: if the real code is refactored the
    test fails loudly instead of silently mutating nothing."""

    MODULES = ("pool.py", "shm_pool.py", "montecarlo.py")

    def _copy_execution(self, tmp_path, mutations=None):
        paths = []
        texts = {}
        for name in self.MODULES:
            text = (EXECUTION / name).read_text()
            for old, new in (mutations or {}).get(name, ()):
                assert old in text, f"{name}: mutation anchor gone: {old!r}"
                text = text.replace(old, new)
            dest = tmp_path / "src" / "repro" / "execution" / name
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(text)
            paths.append(dest)
            texts[name] = text
        return paths, texts

    def _lint(self, tmp_path, paths, select):
        return run_lint(paths, root=tmp_path, rules=get_rules(select))

    @staticmethod
    def _line_of(text, needle):
        for i, line in enumerate(text.splitlines(), start=1):
            if needle in line:
                return i
        raise AssertionError(f"{needle!r} not found")

    def test_unmutated_copies_are_clean(self, tmp_path):
        paths, _ = self._copy_execution(tmp_path)
        result = self._lint(
            tmp_path, paths, ["R010", "R011", "R012", "R013"]
        )
        assert result.findings == []

    def test_dropping_unlink_fires_r011(self, tmp_path):
        mutations = {
            "shm_pool.py": [(
                "                shm.close()\n"
                "                shm.unlink()",
                "                shm.close()",
            )],
        }
        paths, texts = self._copy_execution(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R011"])
        assert rule_ids(result) == ["R011"]
        finding = result.findings[0]
        assert finding.path.endswith("shm_pool.py")
        assert finding.line == self._line_of(
            texts["shm_pool.py"], "shm = shared_memory.SharedMemory("
        )
        assert "never .unlink()ed" in finding.message

    def test_bypassing_pid_guard_fires_r013(self, tmp_path):
        old = (
            "        pool = _SHARED_POOL\n"
            "        if pool is not None and _SHARED_PID != pid:\n"
        )
        mutations = {
            "pool.py": [(
                old,
                "        pool = _SHARED_POOL\n"
                "        if False and pool is None:\n",
            )],
        }
        paths, texts = self._copy_execution(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R013"])
        assert [f.rule for f in result.findings] == ["R013"]
        finding = result.findings[0]
        assert finding.path.endswith("pool.py")
        assert "_SHARED_POOL" in finding.message

    def test_wall_clock_in_worker_fires_r012(self, tmp_path):
        anchor = 'processes can import it)."""'
        inserted = "    _t0 = time.time()"
        mutations = {
            "montecarlo.py": [(anchor, anchor + "\n" + inserted)],
        }
        paths, texts = self._copy_execution(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R012"])
        assert rule_ids(result) == ["R012"]
        finding = result.findings[0]
        assert finding.path.endswith("montecarlo.py")
        assert finding.line == self._line_of(
            texts["montecarlo.py"], inserted.strip()
        )
        assert "wall clock" in finding.message

    def test_dropping_attach_clearer_fires_r010(self, tmp_path):
        mutations = {
            "shm_pool.py": [(
                "register_cache_clearer(_drop_attached)\n",
                "",
            )],
        }
        paths, texts = self._copy_execution(tmp_path, mutations)
        result = self._lint(tmp_path, paths, ["R010"])
        assert result.findings, "dropping the clearer must unsanction _ATTACHED"
        assert {f.rule for f in result.findings} == {"R010"}
        lines = {f.line for f in result.findings}
        assert self._line_of(
            texts["shm_pool.py"], "_ATTACHED[handle.pool_id] = history"
        ) in lines
