"""Budget-constrained (min-time) planning tests — the dual problem."""

import pytest

from repro.core.optimizer import SompiOptimizer
from repro.errors import ConfigurationError, InfeasibleError
from repro.experiments.env import LOOSE_DEADLINE_FACTOR


@pytest.fixture(scope="module")
def setup(small_env):
    problem = small_env.problem("BT", LOOSE_DEADLINE_FACTOR)
    models = small_env.failure_models(problem)
    opt = SompiOptimizer(problem, models, small_env.config)
    return small_env, problem, opt


class TestPlanBudget:
    def test_budget_respected_in_expectation(self, setup):
        env, problem, opt = setup
        budget = opt.plan().expectation.cost * 1.5
        plan = opt.plan_budget(budget)
        assert plan.expectation.cost <= budget + 1e-6

    def test_bigger_budget_never_slower(self, setup):
        env, problem, opt = setup
        base = opt.plan().expectation.cost
        times = [
            opt.plan_budget(b).expectation.time
            for b in (base * 1.1, base * 3.0, base * 20.0)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(times, times[1:]))

    def test_huge_budget_buys_fastest_option(self, setup):
        env, problem, opt = setup
        plan = opt.plan_budget(1e6)
        fastest = min(o.exec_time for o in problem.ondemand_options)
        assert plan.expectation.time <= fastest + 1e-6

    def test_tiny_budget_infeasible(self, setup):
        env, problem, opt = setup
        with pytest.raises(InfeasibleError):
            opt.plan_budget(0.01)

    def test_nonpositive_budget_rejected(self, setup):
        env, problem, opt = setup
        with pytest.raises(InfeasibleError):
            opt.plan_budget(0.0)

    def test_spot_beats_ondemand_time_for_mid_budget(self, setup):
        """A budget below every on-demand bill still gets the job done
        (on spot), at some time cost."""
        env, problem, opt = setup
        cheapest_od = min(o.full_run_cost for o in problem.ondemand_options)
        budget = opt.plan().expectation.cost * 1.2
        assert budget < cheapest_od  # spot is the only affordable path
        plan = opt.plan_budget(budget)
        assert plan.used_spot
        assert plan.expectation.cost <= budget + 1e-6


class TestObjectiveParameter:
    def test_unknown_objective_rejected(self, setup):
        env, problem, opt = setup
        from repro.core.ondemand_select import select_ondemand_relaxed
        from repro.core.two_level import TwoLevelOptimizer

        _, od = select_ondemand_relaxed(
            problem.ondemand_options, problem.deadline, env.config.slack
        )
        two = TwoLevelOptimizer(problem, opt.failure_models, od, env.config)
        with pytest.raises(ConfigurationError):
            two.optimize_subset((0,), objective="energy")

    def test_time_objective_requires_budget(self, setup):
        env, problem, opt = setup
        from repro.core.ondemand_select import select_ondemand_relaxed
        from repro.core.two_level import TwoLevelOptimizer

        _, od = select_ondemand_relaxed(
            problem.ondemand_options, problem.deadline, env.config.slack
        )
        two = TwoLevelOptimizer(problem, opt.failure_models, od, env.config)
        with pytest.raises(ConfigurationError):
            two.optimize_subset((0,), objective="time")

    def test_duality_sanity(self, setup):
        """Planning for cost then re-planning with that cost as budget
        should not find a slower plan than the deadline allows."""
        env, problem, opt = setup
        cost_plan = opt.plan()
        budget_plan = opt.plan_budget(cost_plan.expectation.cost * 1.001)
        assert budget_plan.expectation.time <= cost_plan.expectation.time + 1e-6
