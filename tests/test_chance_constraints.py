"""Chance-constraint tests (P(miss) bounds, cost quantiles)."""

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.chance import cost_quantile, miss_probability, sample_outcomes
from repro.core.cost_model import GroupOutcome, evaluate
from repro.core.problem import OnDemandOption
from repro.errors import ConfigurationError
from tests.conftest import make_group


@pytest.fixture
def ondemand():
    return OnDemandOption(get_instance_type("c3.xlarge"), 8, 6.0)


def outcome(pmf, spec=None, interval=3.0, price=0.05):
    spec = spec or make_group(exec_time=float(len(pmf) - 1))
    return GroupOutcome.from_pmf(
        spec, 0.1, interval, np.asarray(pmf, float), price, 1.0
    )


class TestSampling:
    def test_sample_moments_match_model(self, ondemand):
        spec = make_group(exec_time=6.0, overhead=0.25, recovery=0.25)
        o = outcome([0.1, 0.1, 0.1, 0.1, 0.1, 0.0, 0.5], spec=spec)
        exp = evaluate([o], ondemand)
        rng = np.random.default_rng(1)
        costs, times = sample_outcomes([o], ondemand, 100_000, rng)
        assert costs.mean() == pytest.approx(exp.cost, rel=0.02)
        assert times.mean() == pytest.approx(exp.time, rel=0.02)

    def test_two_group_coupling(self, ondemand):
        sa = make_group(zone="us-east-1a", exec_time=4.0)
        sb = make_group(zone="us-east-1b", exec_time=4.0)
        oa = outcome([0.5, 0, 0, 0, 0.5], spec=sa)
        ob = outcome([0.5, 0, 0, 0, 0.5], spec=sb)
        exp = evaluate([oa, ob], ondemand)
        costs, times = sample_outcomes(
            [oa, ob], ondemand, 100_000, np.random.default_rng(2)
        )
        assert costs.mean() == pytest.approx(exp.cost, rel=0.02)
        assert times.mean() == pytest.approx(exp.time, rel=0.02)

    def test_validation(self, ondemand):
        with pytest.raises(ConfigurationError):
            sample_outcomes([], ondemand, 10, np.random.default_rng(0))
        o = outcome([0.5, 0.5])
        with pytest.raises(ConfigurationError):
            sample_outcomes([o], ondemand, 0, np.random.default_rng(0))


class TestMissProbability:
    def test_certain_completion_never_misses(self, ondemand):
        o = outcome([0, 0, 0, 0, 1.0])
        # wall at completion is deterministic; deadline above it
        assert miss_probability([o], ondemand, deadline=50.0) == 0.0

    def test_certain_failure_misses_tight_deadline(self, ondemand):
        o = outcome([1.0, 0, 0, 0, 0])
        # instant failure -> full on-demand rerun of 6h; deadline 3h
        assert miss_probability([o], ondemand, deadline=3.0) == 1.0

    def test_hand_computed_mixture(self, ondemand):
        spec = make_group(exec_time=4.0, overhead=0.0, recovery=0.0)
        o = outcome([0.3, 0, 0, 0, 0.7], spec=spec, interval=4.0)
        # 30%: fail at t=0 -> time = 0 + 1.0*6 = 6; 70%: complete at 4.
        assert miss_probability([o], ondemand, deadline=5.0) == pytest.approx(
            0.3, abs=0.02
        )

    def test_expectation_can_hide_the_tail(self, ondemand):
        """The motivating case: E[time] ok, P(miss) large."""
        spec = make_group(exec_time=4.0, overhead=0.0, recovery=0.0)
        o = outcome([0.3, 0, 0, 0, 0.7], spec=spec, interval=4.0)
        exp = evaluate([o], ondemand)
        deadline = 5.0
        assert exp.time <= deadline  # expectation satisfied (4.6 <= 5)
        assert miss_probability([o], ondemand, deadline) > 0.25


class TestCostQuantile:
    def test_quantiles_ordered(self, ondemand):
        o = outcome([0.2, 0.1, 0.1, 0.1, 0.5])
        q50 = cost_quantile([o], ondemand, 0.5)
        q95 = cost_quantile([o], ondemand, 0.95)
        assert q50 <= q95

    def test_invalid_quantile(self, ondemand):
        o = outcome([0.5, 0.5])
        with pytest.raises(ConfigurationError):
            cost_quantile([o], ondemand, 1.5)


class TestOptimizerIntegration:
    def test_chance_constrained_plan(self, small_env):
        problem = small_env.problem("BT", 1.5)
        relaxed = small_env.sompi_plan(problem)
        strict_cfg = small_env.config.with_(max_miss_probability=0.05)
        strict = small_env.sompi_plan(problem, strict_cfg)
        # A feasible plan exists and costs at least as much as the
        # unconstrained one (smaller feasible set).
        assert strict.expectation.cost >= relaxed.expectation.cost - 1e-9
        if strict.decision.groups:
            from repro.core.chance import miss_probability as mp

            models = small_env.failure_models(problem)
            outcomes = [
                GroupOutcome.build(
                    problem.groups[g.group_index],
                    g.bid,
                    g.interval,
                    models[problem.groups[g.group_index].key],
                )
                for g in strict.decision.groups
            ]
            od = problem.ondemand_options[strict.decision.ondemand_index]
            assert mp(outcomes, od, problem.deadline) <= 0.05 + 1e-9

    def test_config_validates_probability(self):
        from repro.config import SompiConfig

        with pytest.raises(Exception):
            SompiConfig(max_miss_probability=1.5)
