"""Plan JSON export and adaptive-executor semantics tests."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.execution.adaptive import AdaptiveExecutor


class TestPlanToDict:
    def test_roundtrips_through_json(self, small_env):
        problem = small_env.problem("BT", 1.5)
        plan = small_env.sompi_plan(problem)
        doc = json.loads(json.dumps(plan.to_dict()))
        assert doc["expected_cost"] == pytest.approx(plan.expectation.cost)
        assert doc["deadline_hours"] == pytest.approx(problem.deadline)
        assert len(doc["groups"]) == len(plan.decision.groups)
        for g in doc["groups"]:
            assert "@us-east-" in g["market"]
            assert g["bid_per_hour"] > 0
        assert doc["fallback"]["instances"] >= 1

    def test_cli_plan_json(self, capsys):
        code = main(
            ["plan", "--app", "FT", "--kappa", "2", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["used_spot"] in (True, False)
        assert doc["expected_time_hours"] <= doc["deadline_hours"] + 1e-9

    def test_cli_plan_json_extra_kernel(self, capsys):
        code = main(["plan", "--app", "CG", "--kappa", "2", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["expected_cost"] > 0


class TestAdaptiveSemantics:
    def test_persistent_adaptive_completes(self, small_env):
        problem = small_env.problem("BT", 1.5)
        ex = AdaptiveExecutor(
            problem, small_env.history, small_env.config, semantics="persistent"
        )
        res = ex.run(small_env.train_end + 10.0)
        assert res.completed

    def test_unknown_semantics_rejected(self, small_env):
        problem = small_env.problem("BT", 1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveExecutor(
                problem, small_env.history, small_env.config, semantics="spotty"
            )

    def test_persistent_never_loses_window_progress(self, small_env):
        """Within each window, fractions only move forward."""
        problem = small_env.problem("BT", 2.0)
        ex = AdaptiveExecutor(
            problem, small_env.history, small_env.config, semantics="persistent"
        )
        res = ex.run(small_env.train_end + 10.0)
        for w in res.windows:
            assert w.fraction_after >= w.fraction_before - 1e-12
