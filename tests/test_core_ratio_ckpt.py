"""Ratio function (Formula 7) and checkpoint-timeline arithmetic."""

import numpy as np
import pytest

from repro.core.ckpt_math import (
    checkpoints_completed,
    progress_after_wall,
    total_wall,
    wall_for_productive,
)
from repro.core.ratio import ratio, ratio_array
from repro.errors import ConfigurationError


class TestRatio:
    def test_completed_is_zero(self):
        assert ratio(10.0, 10.0, 3.0, 0.5) == 0.0

    def test_before_first_checkpoint_is_one(self):
        assert ratio(0.0, 10.0, 3.0, 0.5) == 1.0
        assert ratio(2.9, 10.0, 3.0, 0.5) == 1.0

    def test_after_checkpoints(self):
        # t=7, F=3: two checkpoints (saved 6h); remaining (10-6+0.5)/10
        assert ratio(7.0, 10.0, 3.0, 0.5) == pytest.approx(0.45)

    def test_exactly_at_checkpoint(self):
        assert ratio(3.0, 10.0, 3.0, 0.0) == pytest.approx(0.7)

    def test_capped_at_one(self):
        # huge recovery overhead cannot make things worse than scratch
        assert ratio(3.0, 10.0, 3.0, 100.0) == 1.0

    def test_no_checkpointing_interval_equals_T(self):
        assert ratio(9.9, 10.0, 10.0, 0.5) == 1.0
        assert ratio(10.0, 10.0, 10.0, 0.5) == 0.0

    def test_out_of_range_t(self):
        with pytest.raises(ConfigurationError):
            ratio(-1.0, 10.0, 3.0, 0.5)
        with pytest.raises(ConfigurationError):
            ratio(11.0, 10.0, 3.0, 0.5)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            ratio(1.0, 0.0, 3.0, 0.5)
        with pytest.raises(ConfigurationError):
            ratio(1.0, 10.0, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            ratio(1.0, 10.0, 3.0, -0.5)


class TestRatioArray:
    def test_matches_scalar(self):
        ts = np.array([0.0, 1.0, 2.9, 3.0, 5.5, 7.0, 9.9, 10.0])
        vec = ratio_array(ts, 10.0, 3.0, 0.5)
        scalars = [ratio(float(t), 10.0, 3.0, 0.5) for t in ts]
        assert np.allclose(vec, scalars)

    def test_monotone_nonincreasing_in_t_until_completion(self):
        ts = np.linspace(0.0, 10.0, 101)
        vec = ratio_array(ts, 10.0, 2.0, 0.1)
        # ratio decreases (weakly) as more work is checkpointed
        assert np.all(np.diff(vec) <= 1e-12)

    def test_bounds(self):
        ts = np.linspace(0.0, 10.0, 50)
        vec = ratio_array(ts, 10.0, 2.5, 0.3)
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0)


class TestCheckpointMath:
    def test_checkpoints_completed_basic(self):
        assert checkpoints_completed(7.0, 10.0, 3.0) == 2
        assert checkpoints_completed(2.9, 10.0, 3.0) == 0
        assert checkpoints_completed(3.0, 10.0, 3.0) == 1

    def test_no_checkpoint_at_finish_line(self):
        # F=5, T=10: checkpoint at 5 only; the one at 10 is never taken.
        assert checkpoints_completed(10.0, 10.0, 5.0) == 1
        # F=T: no checkpoints at all.
        assert checkpoints_completed(10.0, 10.0, 10.0) == 0

    def test_wall_for_productive(self):
        # 7h work, 2 checkpoints of 0.5h
        assert wall_for_productive(7.0, 10.0, 3.0, 0.5) == pytest.approx(8.0)

    def test_total_wall(self):
        # T=10, F=3 -> ckpts at 3,6,9 -> 3 checkpoints
        assert total_wall(10.0, 3.0, 0.5) == pytest.approx(11.5)
        assert total_wall(10.0, 10.0, 0.5) == pytest.approx(10.0)

    def test_progress_roundtrip(self):
        for p in (0.0, 1.0, 3.0, 4.5, 6.0, 8.2, 10.0):
            w = wall_for_productive(p, 10.0, 3.0, 0.5)
            productive, saved, _ = progress_after_wall(w, 10.0, 3.0, 0.5)
            assert productive == pytest.approx(p)

    def test_progress_mid_checkpoint_saves_previous(self):
        # wall 3.2: 3h work done, checkpoint 1 in progress -> saved 0
        productive, saved, n = progress_after_wall(3.2, 10.0, 3.0, 0.5)
        assert productive == pytest.approx(3.0)
        assert saved == 0.0
        assert n == 0

    def test_progress_after_first_full_cycle(self):
        productive, saved, n = progress_after_wall(4.0, 10.0, 3.0, 0.5)
        assert productive == pytest.approx(3.5)
        assert saved == pytest.approx(3.0)
        assert n == 1

    def test_completion_detected(self):
        productive, saved, n = progress_after_wall(11.5, 10.0, 3.0, 0.5)
        assert productive == 10.0 and saved == 10.0 and n == 3

    def test_zero_overhead(self):
        productive, saved, n = progress_after_wall(7.0, 10.0, 3.0, 0.0)
        assert productive == pytest.approx(7.0)
        assert saved == pytest.approx(6.0)
        assert n == 2

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            progress_after_wall(-1.0, 10.0, 3.0, 0.5)
        with pytest.raises(ConfigurationError):
            total_wall(0.0, 3.0, 0.5)
