"""Tests for :mod:`repro.obs` — metrics, event tracing, audit invariants.

The observability layer is the tripwire that keeps cost-accounting
drift out of the replay/adaptive paths: these tests exercise the
registry and the ring buffer directly, then drive real replays with
tracing and audit switched on and assert the derived event stream, the
ledger text, and the conservation invariants all agree — scalar vs
batched, window vs full run, continuous vs hourly billing.
"""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.cloud.billing import CONTINUOUS, HOURLY, CostItem
from repro.cloud.instance_types import get_instance_type
from repro.config import SompiConfig
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.errors import AuditError, ConfigurationError
from repro.execution.adaptive import AdaptiveExecutor
from repro.execution.batch_replay import replay_batch
from repro.execution.montecarlo import sample_start_times
from repro.execution.replay import (
    checkpoint_storage_cost,
    checkpoint_write_times,
    replay_decision,
    replay_window,
)
from repro.execution.results import MonteCarloSummary
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from repro.obs.metrics import Metrics
from repro.units import BYTES_PER_GB
from tests.conftest import make_group


def flat_setup(exec_time=6.0, image_gb=0.0, price=0.05):
    """One group on a flat cheap market (never dies at bid 0.1)."""
    g = make_group(exec_time=exec_time, overhead=0.5, recovery=0.5, n_instances=2)
    if image_gb:
        g = dataclasses.replace(g, image_bytes=image_gb * BYTES_PER_GB)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=30.0)
    h = SpotPriceHistory()
    h.add(g.key, SpotPriceTrace([0.0], [price], 600.0))
    return problem, h


def spike_setup():
    """One group that dies at hour 3 (price spikes above the 0.1 bid)."""
    g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=30.0)
    h = SpotPriceHistory()
    h.add(g.key, SpotPriceTrace([0.0, 3.0], [0.05, 1.0], 600.0))
    return problem, h


def race_setup():
    """Two groups on flat markets; the 5h group beats the 6h group."""
    g1 = make_group(zone="us-east-1a", exec_time=5.0, overhead=0.5, recovery=0.5)
    g2 = make_group(zone="us-east-1b", exec_time=6.0, overhead=0.5, recovery=0.5)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g1, g2), ondemand_options=(od,), deadline=30.0)
    h = SpotPriceHistory()
    h.add(g1.key, SpotPriceTrace([0.0], [0.05], 600.0))
    h.add(g2.key, SpotPriceTrace([0.0], [0.05], 600.0))
    return problem, h


ONE_GROUP = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
TWO_GROUPS = Decision(
    groups=(GroupDecision(0, 0.1, 2.0), GroupDecision(1, 0.1, 2.0)),
    ondemand_index=0,
)


class TestMetrics:
    def test_counters_and_timers(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        assert m.get("a") == 5
        assert m.get("missing") == 0
        with m.timer("t"):
            pass
        with m.timer("t"):
            pass
        assert m.timers["t"].calls == 2
        assert m.timers["t"].seconds >= 0.0

    def test_snapshot_merge_round_trip(self):
        a, b = Metrics(), Metrics()
        a.inc("x", 2)
        a.add_time("t", 1.5)
        b.inc("x", 3)
        b.inc("y")
        b.add_time("t", 0.5)
        a.merge_snapshot(b.snapshot())
        assert a.get("x") == 5
        assert a.get("y") == 1
        assert a.timers["t"].seconds == pytest.approx(2.0)
        assert a.timers["t"].calls == 2

    def test_format_block_and_reset(self):
        m = Metrics()
        assert "(empty)" in m.format_block()
        m.inc("replay.runs", 7)
        m.add_time("plan", 0.25)
        block = m.format_block()
        assert "== metrics ==" in block
        assert "replay.runs" in block and "7" in block
        assert "plan" in block and "1 call" in block
        m.reset()
        assert m.snapshot() == {"counters": {}, "timers": {}}

    def test_library_increments_global_registry(self):
        problem, h = flat_setup()
        before = obs.get_metrics().get("replay.scalar_runs")
        replay_decision(problem, ONE_GROUP, h, 0.0)
        assert obs.get_metrics().get("replay.scalar_runs") == before + 1


class TestEventTrace:
    def test_ring_bounds_memory_but_counts_all(self):
        trace = obs.EventTrace(capacity=3)
        for k in range(5):
            trace.emit("launch", float(k), "m1.small/us-east-1a")
        assert len(trace) == 3
        assert trace.emitted == 5
        assert [e.time for e in trace.events()] == [2.0, 3.0, 4.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            obs.EventTrace().emit("explosion", 0.0)

    def test_jsonl_sink(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        with obs.EventTrace(jsonl_path=str(path)) as trace:
            trace.emit("launch", 1.0, "k", bid=0.1)
            trace.emit("death", 2.0, "k", saved=0.5)
        lines = [json.loads(s) for s in path.read_text().splitlines()]
        assert lines == [
            {"kind": "launch", "time": 1.0, "key": "k", "bid": 0.1},
            {"kind": "death", "time": 2.0, "key": "k", "saved": 0.5},
        ]

    def test_emit_is_noop_without_installed_trace(self):
        assert not obs.trace_active()
        obs.emit("launch", 0.0, "k")  # must not raise or record anywhere


class TestEventStream:
    def test_completion_run_tells_the_whole_story(self):
        problem, h = flat_setup(image_gb=45.0)
        with obs.tracing() as trace:
            result = replay_decision(
                problem, ONE_GROUP, h, 0.0, account_storage=True
            )
        kinds = [e.kind for e in trace.events()]
        assert kinds == ["launch", "checkpoint", "checkpoint", "complete"]
        rec = result.group_records[0]
        ckpt_times = [e.time for e in trace.events() if e.kind == "checkpoint"]
        assert ckpt_times == checkpoint_write_times(
            problem.groups[0], ONE_GROUP.groups[0].interval, rec
        )

    def test_storage_ledger_matches_event_stream(self):
        """Satellite 1 regression: GB-hours re-derived from the audited
        checkpoint events must equal the storage ledger line."""
        problem, h = flat_setup(image_gb=73.0)
        with obs.tracing() as trace:
            result = replay_decision(
                problem, ONE_GROUP, h, 0.0, account_storage=True
            )
        writes = [e.time for e in trace.events() if e.kind == "checkpoint"]
        run_end = result.start_time + result.makespan
        gb_hours = sum(
            73.0 * (nxt - t)
            for t, nxt in zip(writes, writes[1:] + [run_end])
        )
        expected = gb_hours * 0.03 / 730.0
        assert result.ledger.total("storage") == pytest.approx(expected)

    def test_death_and_fallback_events(self):
        problem, h = spike_setup()
        with obs.tracing() as trace:
            result = replay_decision(problem, ONE_GROUP, h, 0.0)
        assert result.completed_by == "ondemand"
        kinds = [e.kind for e in trace.events()]
        assert "death" in kinds and "fallback" in kinds
        fallback = [e for e in trace.events() if e.kind == "fallback"][0]
        data = dict(fallback.data)
        assert fallback.key == "ondemand"
        assert data["hours"] == pytest.approx(result.ondemand_hours)
        assert data["cost"] == pytest.approx(result.ledger.total("ondemand"))

    def test_scalar_and_batch_streams_identical(self):
        problem, h = spike_setup()
        starts = np.array([0.0, 0.5, 1.0, 2.5, 4.0])
        with obs.tracing() as ta:
            scalar = [
                replay_decision(problem, ONE_GROUP, h, float(t)) for t in starts
            ]
        with obs.tracing() as tb:
            batched = replay_batch(problem, ONE_GROUP, h, starts)
        assert len(scalar) == len(batched)
        obs.assert_event_parity(ta.events(), tb.events())


class TestAuditRunResult:
    def test_clean_results_pass(self):
        for problem, h in (flat_setup(image_gb=45.0), spike_setup()):
            with obs.audited():
                replay_decision(problem, ONE_GROUP, h, 0.0, account_storage=True)
                replay_decision(problem, ONE_GROUP, h, 0.0, billing=HOURLY)
                replay_batch(problem, ONE_GROUP, h, np.array([0.0, 1.0]))

    def test_cost_drift_raises(self):
        problem, h = flat_setup()
        result = replay_decision(problem, ONE_GROUP, h, 0.0)
        result.cost += 0.25  # a dollar quarter with no ledger line
        with pytest.raises(AuditError, match="cost-conservation"):
            obs.audit_run_result(problem, ONE_GROUP, result)

    def test_unknown_category_raises(self):
        problem, h = flat_setup()
        result = replay_decision(problem, ONE_GROUP, h, 0.0)
        result.ledger.add("misc", "slush fund", 0.0)
        with pytest.raises(AuditError, match="ledger-categories"):
            obs.audit_run_result(problem, ONE_GROUP, result)

    def test_spot_line_mismatch_raises(self):
        problem, h = flat_setup()
        result = replay_decision(problem, ONE_GROUP, h, 0.0)
        item = result.ledger.items[0]
        assert item.category == "spot"
        result.ledger.items[0] = CostItem("spot", item.description, item.dollars + 0.5)
        result.cost += 0.5  # keep conservation green so spot-lines fires
        with pytest.raises(AuditError, match="spot-lines"):
            obs.audit_run_result(problem, ONE_GROUP, result)

    def test_deep_billing_audit_catches_wrong_policy(self):
        """A record billed hourly audited as continuous must fail."""
        # 5.3h of work + 0.5h overheads never sums to whole hours, so
        # the hourly and continuous bills are guaranteed to disagree.
        problem, h = flat_setup(exec_time=5.3)
        result = replay_decision(problem, ONE_GROUP, h, 0.0, billing=HOURLY)
        with pytest.raises(AuditError, match="billing"):
            obs.audit_run_result(
                problem, ONE_GROUP, result, history=h, billing=CONTINUOUS
            )


class TestWinnerRestore:
    def test_winner_record_stays_completed(self):
        """Satellite 3: after the completion-clipped rerun the winning
        group's first-pass record must be restored intact."""
        problem, h = race_setup()
        outcome = replay_window(problem, TWO_GROUPS, h, 0.0, 30.0)
        assert outcome.completed
        winner = [
            i
            for i, rec in enumerate(outcome.records)
            if str(rec.key) == outcome.completed_key
        ]
        assert len(winner) == 1
        rec = outcome.records[winner[0]]
        assert rec.completed
        assert rec.end_time == outcome.completion_time
        # The losing group was cut back to the completion instant.
        loser = outcome.records[1 - winner[0]]
        assert not loser.completed
        assert loser.end_time <= outcome.completion_time + 1e-9

    def test_full_replay_reports_completed_winner(self):
        problem, h = race_setup()
        with obs.audited():  # the audit cross-checks completed_by too
            result = replay_decision(problem, TWO_GROUPS, h, 0.0)
        assert result.completed_by == str(problem.groups[0].key)
        assert result.group_records[0].completed


class TestAdaptiveLedger:
    def test_cost_equals_ledger_total(self):
        problem, h = flat_setup(exec_time=5.5)
        ex = AdaptiveExecutor(problem, h, SompiConfig(kappa=1, bid_levels=5))
        res = ex.run(start_time=100.0)
        assert res.completed
        assert res.cost == pytest.approx(res.ledger.total(), abs=1e-9)
        assert res.ledger.total("spot") > 0.0

    def test_billing_policy_is_threaded(self):
        """Satellite 2: hourly-billing adaptive runs must stop silently
        billing continuously (5.3h of work + 0.5h overheads never lands
        on a whole-hour wall, so the hourly bill must come out higher)."""
        problem, h = flat_setup(exec_time=5.3)
        cfg = SompiConfig(kappa=1, bid_levels=5)
        cont = AdaptiveExecutor(problem, h, cfg).run(start_time=100.0)
        hourly = AdaptiveExecutor(problem, h, cfg, billing=HOURLY).run(
            start_time=100.0
        )
        assert hourly.cost > cont.cost
        assert hourly.cost == pytest.approx(hourly.ledger.total(), abs=1e-9)

    def test_storage_accounting_opt_in(self):
        problem, h = flat_setup(image_gb=45.0)
        cfg = SompiConfig(kappa=1, bid_levels=5)
        plain = AdaptiveExecutor(problem, h, cfg).run(start_time=100.0)
        stored = AdaptiveExecutor(problem, h, cfg, account_storage=True).run(
            start_time=100.0
        )
        assert plain.ledger.total("storage") == 0.0
        if stored.ledger.total("storage") > 0.0:
            assert stored.cost > plain.cost
        assert stored.cost == pytest.approx(stored.ledger.total(), abs=1e-9)

    def test_config_audit_flag_runs_clean(self, small_env):
        problem = small_env.problem("BT", 1.5)
        ex = AdaptiveExecutor(
            problem, small_env.history, small_env.config.with_(audit=True)
        )
        res = ex.run(start_time=small_env.train_end + 10.0)
        assert res.completed

    def test_deadline_fallback_lands_in_ledger(self, small_env):
        problem = small_env.problem("BT", deadline_hours=1.0)
        ex = AdaptiveExecutor(problem, small_env.history, small_env.config)
        res = ex.run(start_time=small_env.train_end + 10.0)
        assert res.fallback_used
        assert res.ledger.total("ondemand") > 0.0
        assert res.cost == pytest.approx(res.ledger.total(), abs=1e-9)

    def test_corrupted_adaptive_result_raises(self):
        problem, h = flat_setup()
        res = AdaptiveExecutor(problem, h, SompiConfig(kappa=1, bid_levels=5)).run(
            start_time=100.0
        )
        broken = dataclasses.replace(res, cost=res.cost + 1.0)
        with pytest.raises(AuditError, match="adaptive-cost-conservation"):
            obs.audit_adaptive_result(broken)


class TestMonteCarloFixes:
    def test_pure_ondemand_starts_honour_window_and_tmin(self):
        """Satellite 4: on-demand baselines sample from the same
        evaluation period as the hybrid replays they are compared to."""
        problem, h = flat_setup()
        d = Decision(groups=(), ondemand_index=0)
        starts = sample_start_times(
            problem, d, h, 50, np.random.default_rng(0), t_min=100.0
        )
        assert np.all(starts >= 100.0)
        assert np.all(starts <= 600.0)
        assert len(np.unique(starts)) > 1  # actually sampled, not pinned

    def test_pure_ondemand_without_any_trace_pins_to_tmin(self):
        problem, _ = flat_setup()
        d = Decision(groups=(), ondemand_index=0)
        starts = sample_start_times(
            problem, d, SpotPriceHistory(), 5, np.random.default_rng(0), t_min=42.0
        )
        assert np.all(starts == 42.0)

    def test_empty_summary_raises_clearly(self):
        with pytest.raises(ConfigurationError, match="empty result list"):
            MonteCarloSummary.from_results([], deadline=10.0)


class TestBillingEdges:
    def test_refund_at_exact_hour_boundary(self):
        # An interruption exactly on the boundary refunds nothing: every
        # consumed increment is whole.
        assert HOURLY.billable_hours(2.0, interrupted=True) == 2.0
        assert HOURLY.billable_hours(2.0, interrupted=False) == 2.0
        # Just past the boundary the partial increment is free.
        assert HOURLY.billable_hours(2.0 + 1e-9, interrupted=True) == 2.0
        assert HOURLY.billable_hours(2.0 + 1e-9, interrupted=False) == 3.0

    def test_refunded_interruption_of_short_run_is_free(self):
        assert HOURLY.billable_hours(0.25, interrupted=True) == 0.0
        assert HOURLY.billable_hours(0.0, interrupted=True) == 0.0

    def test_continuous_ignores_interruption(self):
        assert CONTINUOUS.billable_hours(2.7, interrupted=True) == 2.7

    def test_ledger_merge_by_category_round_trip(self):
        from repro.cloud.billing import CostLedger

        a, b = CostLedger(), CostLedger()
        a.add("spot", "g1", 1.25)
        a.add("storage", "imgs", 0.5)
        b.add("spot", "g2", 2.0)
        b.add("ondemand", "recovery", 4.0)
        a.merge(b)
        assert a.by_category() == {"spot": 3.25, "storage": 0.5, "ondemand": 4.0}
        assert a.total() == pytest.approx(sum(a.by_category().values()))
        assert [i.description for i in a.items] == ["g1", "imgs", "g2", "recovery"]

    def test_scalar_and_batch_ledger_text_parity_under_audit(self):
        """Satellite 5: audited scalar and batched replays must produce
        the same ledger, line for line, across completion and fallback."""
        problem, h = spike_setup()
        starts = np.array([0.0, 1.0, 2.5, 5.0, 8.0])
        with obs.audited():
            scalar = [
                replay_decision(problem, ONE_GROUP, h, float(t)) for t in starts
            ]
            batched = replay_batch(problem, ONE_GROUP, h, starts)
        for a, b in zip(scalar, batched):
            assert [
                (i.category, i.description, i.dollars) for i in a.ledger.items
            ] == [(i.category, i.description, i.dollars) for i in b.ledger.items]
