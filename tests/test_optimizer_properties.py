"""Optimizer-level invariants over randomized problem instances.

Uses seeded randomness (not hypothesis) because each case builds a full
market + failure-model stack; a handful of diverse instances with
deterministic seeds gives the coverage without the runtime.
"""

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.config import SompiConfig
from repro.core.optimizer import SompiOptimizer
from repro.core.problem import CircleGroupSpec, OnDemandOption, Problem
from repro.market.failure import FailureModel
from repro.market.generator import SpotMarketParams, generate_market
from repro.market.history import MarketKey


def random_instance(seed: int):
    """A 2-type x 2-zone problem over random synthetic markets."""
    rng = np.random.default_rng(seed)
    groups, models = [], {}
    options = []
    for tname, base_frac in (("m1.medium", 0.1), ("cc2.8xlarge", 0.25)):
        itype = get_instance_type(tname)
        exec_time = float(rng.uniform(6.0, 20.0))
        m = 128 // itype.vcpus
        options.append(OnDemandOption(itype, m, exec_time))
        for zone in ("us-east-1a", "us-east-1b"):
            key = MarketKey(tname, zone)
            params = SpotMarketParams(
                base_price=itype.ondemand_price * base_frac,
                spike_rate=float(rng.uniform(0.0, 0.05)),
                spike_magnitude=float(rng.uniform(5.0, 50.0)),
                spike_duration_mean=float(rng.uniform(0.5, 3.0)),
            )
            trace = generate_market(params, 24.0 * 21, seed=seed * 100 + hash(zone) % 97)
            models[key] = FailureModel(trace)
            groups.append(
                CircleGroupSpec(
                    key=key,
                    itype=itype,
                    n_instances=m,
                    exec_time=exec_time,
                    checkpoint_overhead=float(rng.uniform(0.02, 0.2)),
                    recovery_overhead=float(rng.uniform(0.05, 0.3)),
                )
            )
    fastest = min(o.exec_time for o in options)
    problem = Problem(
        groups=tuple(groups),
        ondemand_options=tuple(options),
        deadline=fastest * float(rng.uniform(1.2, 2.5)),
    )
    return problem, models


CONFIG = SompiConfig(kappa=2, bid_levels=5)


@pytest.mark.parametrize("seed", range(8))
def test_plan_always_feasible_and_not_worse_than_ondemand(seed):
    problem, models = random_instance(seed)
    plan = SompiOptimizer(problem, models, CONFIG).plan()
    assert plan.expectation.time <= problem.deadline + 1e-9
    best_od = min(
        o.full_run_cost
        for o in problem.ondemand_options
        if o.exec_time <= problem.deadline
    )
    assert plan.expectation.cost <= best_od + 1e-6


@pytest.mark.parametrize("seed", range(4))
def test_cost_nonincreasing_in_deadline(seed):
    problem, models = random_instance(seed)
    costs = []
    for factor in (1.0, 1.5, 2.5):
        relaxed = Problem(
            problem.groups, problem.ondemand_options, problem.deadline * factor
        )
        plan = SompiOptimizer(relaxed, models, CONFIG).plan()
        costs.append(plan.expectation.cost)
    # Larger feasible sets can only help (up to search-grid noise).
    assert all(b <= a * 1.02 + 1e-9 for a, b in zip(costs, costs[1:]))


@pytest.mark.parametrize("seed", range(4))
def test_more_bid_levels_never_hurt(seed):
    problem, models = random_instance(seed)
    coarse = SompiOptimizer(problem, models, CONFIG.with_(bid_levels=3)).plan()
    fine = SompiOptimizer(problem, models, CONFIG.with_(bid_levels=7)).plan()
    # The level-3 candidate set {H/8, ..., H} is a subset of level-7's
    # only approximately (floors/dedup), so allow small regression.
    assert fine.expectation.cost <= coarse.expectation.cost * 1.05 + 1e-9


@pytest.mark.parametrize("seed", range(4))
def test_plan_deterministic(seed):
    problem, models = random_instance(seed)
    a = SompiOptimizer(problem, models, CONFIG).plan()
    b = SompiOptimizer(problem, models, CONFIG).plan()
    assert a.decision == b.decision
    assert a.expectation.cost == b.expectation.cost
