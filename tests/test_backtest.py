"""Backtest harness: window splitting, manifest, holdout isolation,
determinism (DESIGN.md §11)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.backtest import (
    BacktestManifest,
    build_manifest,
    plan_window,
    run_backtest,
    sample_window_starts,
    split_history,
    split_windows,
)
from repro.cloud.zones import Zone
from repro.config import SompiConfig
from repro.core.windows import BacktestWindow
from repro.errors import ConfigurationError
from repro.experiments.env import ExperimentEnv
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace


def _mini_env(seed: int = 11, config: SompiConfig | None = None) -> ExperimentEnv:
    """A fresh reduced environment (function-scoped: tests mutate none)."""
    return ExperimentEnv.paper_default(
        seed=seed,
        history_days=21.0,
        train_days=7.0,
        config=config or SompiConfig(kappa=2, bid_levels=5),
        instance_types=("m1.medium", "cc2.8xlarge"),
        zones=(Zone("us-east-1a"), Zone("us-east-1b")),
    )


def _mini_manifest(env: ExperimentEnv, n_windows: int = 2) -> BacktestManifest:
    return build_manifest(
        env,
        n_windows=n_windows,
        plan_hours=5 * 24.0,
        holdout_hours=3 * 24.0,
        apps=("BT",),
        deadline_factors=(("loose", 1.5),),
        n_samples=30,
    )


@pytest.fixture(scope="module")
def mini_report():
    env = _mini_env()
    manifest = _mini_manifest(env)
    return env, manifest, run_backtest(env, manifest)


# ----------------------------------------------------------------------
# Window splitting
# ----------------------------------------------------------------------
class TestSplitWindows:
    def test_rolling_bounds(self):
        windows = split_windows(0.0, 35 * 24.0, 3, 14 * 24.0, 7 * 24.0)
        assert len(windows) == 3
        for i, w in enumerate(windows):
            assert w.index == i
            assert w.plan_start == i * 7 * 24.0
            assert w.plan_end == w.plan_start + 14 * 24.0
            assert w.holdout_end == w.plan_end + 7 * 24.0
        # Rolling origin: consecutive holdouts tile the future.
        assert windows[1].plan_end == windows[0].holdout_end

    def test_custom_stride(self):
        windows = split_windows(0.0, 100.0, 2, 10.0, 5.0, stride_hours=50.0)
        assert windows[1].plan_start == 50.0

    def test_too_short_raises(self):
        with pytest.raises(ConfigurationError, match="too short"):
            split_windows(0.0, 24.0, 2, 20.0, 10.0)

    def test_bad_params_raise(self):
        with pytest.raises(ConfigurationError):
            split_windows(0.0, 100.0, 0, 10.0, 5.0)
        with pytest.raises(ConfigurationError):
            split_windows(0.0, 100.0, 1, -1.0, 5.0)
        with pytest.raises(ConfigurationError):
            BacktestWindow(index=0, plan_start=5.0, plan_end=5.0, holdout_end=9.0)

    def test_exact_fit_allowed(self):
        windows = split_windows(0.0, 35.0, 3, 14.0, 7.0)
        assert windows[-1].holdout_end == pytest.approx(35.0)


class TestSampleWindowStarts:
    def test_within_trace(self, flat_trace):
        rng = np.random.default_rng(0)
        starts = sample_window_starts(flat_trace, 24.0, 50, rng)
        assert starts.shape == (50,)
        assert np.all(starts >= flat_trace.start_time)
        assert np.all(starts + 24.0 <= flat_trace.end_time)

    def test_short_trace_raises(self, flat_trace):
        # flat_trace spans 240 h; a 300 h span used to invert the
        # uniform range and silently sample outside the trace.
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError, match="too short"):
            sample_window_starts(flat_trace, 300.0, 5, rng)

    def test_equal_span_raises(self, flat_trace):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            sample_window_starts(flat_trace, flat_trace.duration, 5, rng)

    def test_bad_n_raises(self, flat_trace):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            sample_window_starts(flat_trace, 24.0, 0, rng)


class TestSplitHistory:
    def test_partition_bounds_and_content(self, flat_trace):
        history = SpotPriceHistory()
        from repro.market.history import MarketKey

        key = MarketKey("m1.small", "us-east-1a")
        history.add(key, flat_trace)
        window = BacktestWindow(
            index=0, plan_start=0.0, plan_end=96.0, holdout_end=168.0
        )
        plan, holdout = split_history(history, window)
        assert plan.get(key).start_time == 0.0
        assert plan.get(key).end_time == 96.0
        assert holdout.get(key).start_time == 96.0
        assert holdout.get(key).end_time == 168.0
        # Disjoint content => disjoint cache/artifact keys.
        assert plan.get(key).content_hash() != holdout.get(key).content_hash()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_round_trip(self, tmp_path, mini_report):
        env, manifest, _report = mini_report
        path = tmp_path / "manifest.json"
        manifest.save(path)
        loaded = BacktestManifest.load(path)
        assert loaded == manifest  # dataclass equality: bit-exact floats

    def test_rejects_unknown_format(self):
        with pytest.raises(ConfigurationError, match="format"):
            BacktestManifest.from_dict({"format": "bogus"})

    def test_check_traces_mismatch(self, mini_report):
        env, manifest, _report = mini_report
        other = _mini_env(seed=12)  # different seed -> different prices
        with pytest.raises(ConfigurationError, match="trace hash mismatch"):
            manifest.check_traces(other.history)

    def test_seed_mismatch_raises(self, mini_report):
        env, manifest, _report = mini_report
        other = _mini_env(seed=11)
        object.__setattr__(other, "seed", 99)
        with pytest.raises(ConfigurationError, match="seed"):
            run_backtest(other, manifest)

    def test_fingerprint_recorded(self, mini_report):
        from repro.execution.artifacts import engine_fingerprint

        _env, manifest, _report = mini_report
        assert manifest.engine_fingerprint == engine_fingerprint()


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------
class TestRunBacktest:
    def test_covers_every_cell(self, mini_report):
        _env, manifest, report = mini_report
        cells = {(r.window.index, r.app, r.deadline_name) for r in report.results}
        assert cells == {(0, "BT", "loose"), (1, "BT", "loose")}

    def test_rerun_is_bit_identical(self, mini_report):
        _env, manifest, report = mini_report
        env2 = _mini_env()
        report2 = run_backtest(env2, manifest)
        assert report2.results == report.results  # exact float equality

    def test_manifest_reload_rerun_is_bit_identical(self, tmp_path, mini_report):
        _env, manifest, report = mini_report
        path = tmp_path / "m.json"
        manifest.save(path)
        env2 = _mini_env()
        report2 = run_backtest(env2, BacktestManifest.load(path))
        assert report2.results == report.results

    def test_artifact_cache_off_is_bit_identical(self, mini_report):
        _env, manifest, report = mini_report
        env2 = _mini_env(config=SompiConfig(
            kappa=2, bid_levels=5, artifact_cache=False
        ))
        report2 = run_backtest(env2, manifest)
        assert report2.results == report.results

    def test_table_cache_off_is_bit_identical(self, mini_report):
        _env, manifest, report = mini_report
        env2 = _mini_env(config=SompiConfig(
            kappa=2, bid_levels=5, table_cache=False
        ))
        report2 = run_backtest(env2, manifest)
        assert report2.results == report.results

    def test_calibration_bins_consistent(self, mini_report):
        _env, _manifest, report = mini_report
        bins = report.calibration_bins()
        assert len(bins) == 10
        points = report.calibration_points()
        assert sum(b["n_points"] for b in bins) == len(points)
        for b in bins:
            assert 0.0 <= b["predicted"] <= 1.0
            assert 0.0 <= b["realized"] <= 1.0

    def test_events_emitted(self, mini_report):
        env, manifest, _report = mini_report
        with obs.tracing() as trace:
            run_backtest(_mini_env(), manifest)
        kinds = {e.kind for e in trace.events()}
        assert "backtest.window" in kinds
        window_events = [e for e in trace.events() if e.kind == "backtest.window"]
        assert len(window_events) == len(manifest.windows)

    def test_holdout_shorter_than_horizon_raises(self):
        env = _mini_env()
        manifest = build_manifest(
            env,
            n_windows=1,
            plan_hours=5 * 24.0,
            holdout_hours=6.0,  # far below any replay horizon
            apps=("BT",),
            deadline_factors=(("loose", 1.5),),
            n_samples=5,
        )
        with pytest.raises(ConfigurationError, match="holdout"):
            run_backtest(env, manifest)


# ----------------------------------------------------------------------
# Holdout isolation: the planner provably never reads holdout prices
# ----------------------------------------------------------------------
def _poisoned_env(env: ExperimentEnv, t_from: float) -> ExperimentEnv:
    """A clone of ``env`` whose prices from ``t_from`` on are garbage.

    Only segments *starting* at/after ``t_from`` are rewritten: the
    segment straddling the boundary carries a price that was genuinely
    set during the plan window, so the plan-window slice is unchanged.
    """
    poisoned = SpotPriceHistory()
    for key, trace in env.history.items():
        prices = trace.prices.copy()
        mask = trace.times >= t_from
        prices[mask] = prices[mask] * 50.0 + 10.0
        poisoned.add(
            key, SpotPriceTrace(trace.times.copy(), prices, trace.end_time)
        )
    return ExperimentEnv(
        history=poisoned,
        train_end=env.train_end,
        seed=env.seed,
        config=env.config,
        instance_types=env.instance_types,
        zones=env.zones,
    )


class TestHoldoutIsolation:
    def test_poisoned_holdout_does_not_change_the_plan(self):
        env = _mini_env()
        manifest = _mini_manifest(env, n_windows=1)
        window = manifest.windows[0]
        poisoned = _poisoned_env(env, window.plan_end)

        plan_hist, _ = split_history(env.history, window)
        plan_hist_p, holdout_p = split_history(poisoned.history, window)
        # The plan slices are bit-identical; the holdout slices are not.
        for key, trace in plan_hist.items():
            assert trace.content_hash() == plan_hist_p.get(key).content_hash()
        assert any(
            split_history(env.history, window)[1].get(key).content_hash()
            != holdout_p.get(key).content_hash()
            for key, _t in holdout_p.items()
        )

        problem = env.problem("BT", deadline_factor=1.5)
        plan, _models = plan_window(problem, plan_hist, env.config)
        plan_p, _models_p = plan_window(problem, plan_hist_p, poisoned.config)
        assert plan_p.decision == plan.decision
        assert plan_p.expectation == plan.expectation

    def test_poisoned_history_fails_the_trace_pin(self):
        env = _mini_env()
        manifest = _mini_manifest(env, n_windows=1)
        poisoned = _poisoned_env(env, manifest.windows[0].plan_end)
        with pytest.raises(ConfigurationError, match="trace hash mismatch"):
            run_backtest(poisoned, manifest)


# ----------------------------------------------------------------------
# The accuracy experiment's rebuilt window sampling (both branches)
# ----------------------------------------------------------------------
class TestAccuracyWindowSampling:
    def test_short_market_is_skipped_with_note(self, small_env):
        from repro.experiments import accuracy
        from repro.market.history import MarketKey

        keys = [MarketKey("m1.medium", "us-east-1a"),
                MarketKey("m1.medium", "us-east-1b")]
        env = ExperimentEnv(
            history=SpotPriceHistory(),
            train_end=small_env.train_end,
            seed=small_env.seed,
            config=small_env.config,
            instance_types=small_env.instance_types,
            zones=small_env.zones,
        )
        full = small_env.history.get(keys[0])
        env.history.add(keys[0], full)
        # Second market: only 3 days of trace — shorter than the window.
        env.history.add(keys[1], full.slice(full.start_time,
                                            full.start_time + 72.0))
        result = accuracy.run_failure_rate(
            env, markets=keys, n_windows=2, horizons=(6,),
            train_days=4.0, test_days=2.0,
        )
        assert any("skipped 1 market" in note for note in result.notes)
        assert result.rows[0][1] > 0  # the long market still contributed

    def test_all_markets_short_raises(self, small_env):
        from repro.experiments import accuracy
        from repro.market.history import MarketKey

        key = MarketKey("m1.medium", "us-east-1a")
        with pytest.raises(ConfigurationError, match="every market"):
            accuracy.run_failure_rate(
                small_env, markets=[key], n_windows=2, horizons=(6,),
                train_days=400.0, test_days=100.0,
            )


# ----------------------------------------------------------------------
# Fresh-process determinism of the CLI verb (acceptance criterion)
# ----------------------------------------------------------------------
class TestCliFreshProcessDeterminism:
    def test_quick_backtest_bit_identical_across_processes(self, tmp_path):
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        outs = []
        for run in ("a", "b"):
            out = tmp_path / f"results_{run}.json"
            man = tmp_path / f"manifest_{run}.json"
            subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "backtest", "--quick",
                    "--seed", "7", "--out", str(out), "--manifest", str(man),
                ],
                cwd=tmp_path,
                env=env,
                check=True,
                capture_output=True,
            )
            outs.append((out.read_bytes(), man.read_bytes()))
        assert outs[0][0] == outs[1][0], "results differ across fresh processes"
        assert outs[0][1] == outs[1][1], "manifests differ across fresh processes"
        doc = json.loads(outs[0][0])
        ids = {t["experiment_id"] for t in doc["tables"]}
        assert ids == {"EXT-BT-WIN", "EXT-BT-CAL", "EXT-BT-TRG"}
        win = next(t for t in doc["tables"] if t["experiment_id"] == "EXT-BT-WIN")
        assert len(win["rows"]) == 2  # --quick: 2 windows x BT x loose
