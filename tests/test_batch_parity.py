"""Bit-identity of the batched kernels against their scalar references.

The kernel layer's hard contract (DESIGN.md §8) is that every batched
path — single-shot and persistent spot semantics, hourly billing,
checkpoint-storage accounting, the adaptive executor's window batching,
and the event-level trace sampler — performs the identical IEEE
operations in the identical order as the scalar code it replaced.
These tests drive both sides on spiky generated markets and demand
*exact* float equality (no tolerances anywhere), across multiple seeds
and both billing policies, with the audit invariants switched on.
"""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.cloud.billing import CONTINUOUS, HOURLY
from repro.cloud.instance_types import get_instance_type
from repro.core.bid_search import log_bid_candidates
from repro.core.cost_model import GroupOutcome
from repro.core.grid_eval import (
    bid_matrix_rows,
    optimal_interval_grid,
    outcome_grid,
)
from repro.core.interval import (
    _interval_candidates,
    optimal_interval,
    young_interval,
)
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.core.two_level import clear_shared_caches
from repro.execution.adaptive import AdaptiveExecutor
from repro.execution.batch_replay import replay_batch, replay_window_batch
from repro.execution.kernels import table_cache_size
from repro.execution.montecarlo import sample_start_times
from repro.execution.replay import replay_decision, replay_window
from repro.market.failure import FailureModel
from repro.market.generator import (
    RegimeSwitchingGenerator,
    SpotMarketParams,
    _sample_grid_reference,
)
from repro.market.history import MarketKey, SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from repro.units import BYTES_PER_GB
from tests.conftest import make_group

SEEDS = (3, 17, 91)

_SPIKY = SpotMarketParams(
    base_price=0.05,
    calm_volatility=0.08,
    calm_change_rate=1.5,
    spike_rate=0.12,
    spike_magnitude=8.0,
    spike_duration_mean=0.8,
)
_CALMER = SpotMarketParams(
    base_price=0.04,
    calm_change_rate=0.8,
    spike_rate=0.05,
    spike_duration_mean=1.5,
)


def spiky_setup(seed, image_gb=2.0):
    """Two groups on generated spiky markets (deaths + relaunches)."""
    g1 = make_group(exec_time=6.0, overhead=0.4, recovery=0.5, n_instances=2)
    g2 = dataclasses.replace(
        make_group(zone="us-east-1b", exec_time=6.0, overhead=0.3,
                   recovery=0.4, n_instances=2),
        image_bytes=image_gb * BYTES_PER_GB,
    )
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g1, g2), ondemand_options=(od,), deadline=40.0)
    h = SpotPriceHistory()
    for key, params, sub in ((g1.key, _SPIKY, 0), (g2.key, _CALMER, 1)):
        gen = RegimeSwitchingGenerator(
            params, np.random.default_rng(1000 * seed + sub)
        )
        h.add(key, gen.generate(400.0))
    decision = Decision(
        groups=(GroupDecision(0, 0.075, 2.0), GroupDecision(1, 0.06, 1.5)),
        ondemand_index=0,
    )
    return problem, decision, h


def assert_runs_equal(a, b, ctx=""):
    assert (a.start_time, a.cost, a.makespan, a.completed_by,
            a.ondemand_hours) == (
        b.start_time, b.cost, b.makespan, b.completed_by, b.ondemand_hours
    ), ctx
    assert tuple(a.group_records) == tuple(b.group_records), ctx
    assert a.ledger.items == b.ledger.items, ctx


class TestReplayBatchParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("billing", [CONTINUOUS, HOURLY],
                             ids=["continuous", "hourly"])
    @pytest.mark.parametrize("semantics", ["single-shot", "persistent"])
    @pytest.mark.parametrize("account_storage", [False, True],
                             ids=["nostorage", "storage"])
    def test_batch_matches_scalar(self, seed, billing, semantics,
                                  account_storage):
        problem, decision, h = spiky_setup(seed)
        starts = sample_start_times(
            problem, decision, h, 12, np.random.default_rng(seed)
        )
        scalar = [
            replay_decision(
                problem, decision, h, float(t), semantics=semantics,
                billing=billing, account_storage=account_storage,
            )
            for t in starts
        ]
        batch = replay_batch(
            problem, decision, h, starts, semantics=semantics,
            billing=billing, account_storage=account_storage,
        )
        assert len(batch) == len(scalar)
        for a, b in zip(scalar, batch):
            assert_runs_equal(a, b, f"{seed}/{billing}/{semantics}")

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("persistent", [False, True],
                             ids=["single-shot", "persistent"])
    def test_window_batch_matches_scalar(self, seed, persistent):
        problem, decision, h = spiky_setup(seed)
        t0s = np.random.default_rng(seed).uniform(0.0, 350.0, 8)
        outcomes = replay_window_batch(
            problem, decision, h, t0s, t0s + 20.0, persistent=persistent
        )
        for t0, got in zip(t0s, outcomes):
            want = replay_window(
                problem, decision, h, float(t0), float(t0) + 20.0,
                persistent=persistent,
            )
            assert got == want

    def test_audit_invariants_hold_on_batch_paths(self):
        problem, decision, h = spiky_setup(SEEDS[0])
        starts = sample_start_times(
            problem, decision, h, 10, np.random.default_rng(0)
        )
        with obs.audited():
            for semantics in ("single-shot", "persistent"):
                for billing in (CONTINUOUS, HOURLY):
                    replay_batch(
                        problem, decision, h, starts, semantics=semantics,
                        billing=billing, account_storage=True,
                    )


class TestAdaptiveBatchParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("semantics", ["single-shot", "persistent"])
    def test_run_many_matches_fresh_executors(self, seed, semantics,
                                              small_env):
        problem, decision, h = spiky_setup(seed)
        cfg = small_env.config.with_(window_hours=8.0)
        starts = [80.0 + 7.0 * i for i in range(4)]
        batched = AdaptiveExecutor(
            problem, h, cfg, semantics=semantics, account_storage=True
        ).run_many(starts)
        for t0, got in zip(starts, batched):
            want = AdaptiveExecutor(
                problem, h, cfg, semantics=semantics, account_storage=True
            ).run(t0)
            assert (got.cost, got.makespan, got.completed,
                    got.fallback_used) == (
                want.cost, want.makespan, want.completed, want.fallback_used
            )
            assert got.windows == want.windows
            assert got.ledger.items == want.ledger.items

    def test_run_many_audited(self, small_env):
        problem, decision, h = spiky_setup(SEEDS[1])
        cfg = small_env.config.with_(window_hours=8.0)
        with obs.audited():
            results = AdaptiveExecutor(problem, h, cfg).run_many(
                [60.0, 120.0, 200.0]
            )
        assert len(results) == 3


class TestGeneratorParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("params", [
        _SPIKY,
        _CALMER,
        SpotMarketParams(base_price=0.07, spike_rate=0.0),
        SpotMarketParams(base_price=0.07, calm_change_rate=0.0),
        SpotMarketParams(base_price=0.05, spike_rate=2.0,
                         spike_duration_mean=0.05, calm_volatility=0.2),
    ], ids=["spiky", "calmer", "no-spikes", "no-changes", "dense-spikes"])
    def test_event_level_sampler_byte_identical(self, seed, params):
        for n in (1, 3, 500, 6000):
            vec = RegimeSwitchingGenerator(
                params, np.random.default_rng(seed)
            )._sample_grid(n)
            ref = _sample_grid_reference(
                params, np.random.default_rng(seed), n
            )
            assert vec.tobytes() == ref.tobytes()


class TestCorrelatedParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sample_surges_matches_scalar_reference(self, seed):
        from repro.market.correlated import RegionSurge, sample_surges

        def reference(duration_hours, rng):
            n = rng.poisson(0.05 * duration_hours)
            surges = []
            for _ in range(n):
                start = float(rng.uniform(0.0, duration_hours))
                dur = float(max(0.25, rng.exponential(3.0)))
                severity = float(8.0 * np.exp(0.5 * rng.standard_normal()))
                surges.append(
                    RegionSurge(start, min(dur, duration_hours - start),
                                severity)
                )
            surges.sort(key=lambda s: s.start)
            return surges

        got = sample_surges(
            600.0, np.random.default_rng(seed), rate_per_hour=0.05
        )
        want = reference(600.0, np.random.default_rng(seed))
        assert got == want

    @pytest.mark.parametrize("seed", SEEDS)
    def test_overlay_floor_matches_scalar_reference(self, seed):
        from repro.market.correlated import overlay_price_floor

        r = np.random.default_rng(seed)
        t = np.sort(r.uniform(0.0, 100.0, 30))
        t[0] = 0.0
        trace = SpotPriceTrace(t, r.uniform(0.01, 1.0, 30), 100.0)
        for s, e, f in [(10.0, 25.0, 0.6), (-5.0, 4.0, 0.3),
                        (90.0, 150.0, 2.0), (0.0, 100.0, 0.5),
                        (float(t[4]), float(t[9]), 0.8)]:
            got = overlay_price_floor(trace, s, e, f)
            lo, hi = max(s, 0.0), min(e, 100.0)
            times = list(trace.times)
            prices = list(trace.prices)
            for cut in (lo, hi):
                if cut < trace.end_time and cut not in times:
                    idx = int(np.searchsorted(times, cut, side="right") - 1)
                    times.insert(idx + 1, cut)
                    prices.insert(idx + 1, prices[idx])
            want_p = [max(p, f) if lo <= tt < hi else p
                      for tt, p in zip(times, prices)]
            keep = [0] + [
                k for k in range(1, len(times)) if want_p[k] != want_p[k - 1]
            ]
            assert got.times.tolist() == [times[k] for k in keep]
            assert got.prices.tolist() == [want_p[k] for k in keep]
            assert got.end_time == trace.end_time


class TestTableCache:
    def test_cache_on_off_parity_and_clearing(self):
        problem, decision, h = spiky_setup(SEEDS[2])
        starts = sample_start_times(
            problem, decision, h, 8, np.random.default_rng(2)
        )
        clear_shared_caches()
        assert table_cache_size() == 0
        cached = replay_batch(problem, decision, h, starts, table_cache=True)
        assert table_cache_size() > 0
        uncached = replay_batch(
            problem, decision, h, starts, table_cache=False
        )
        for a, b in zip(cached, uncached):
            assert_runs_equal(a, b, "table_cache on/off")
        clear_shared_caches()
        assert table_cache_size() == 0

    def test_tables_evicted_when_trace_collected(self):
        clear_shared_caches()
        from repro.execution.kernels import trace_tables

        trace = SpotPriceTrace([0.0, 5.0], [0.05, 0.2], 50.0)
        trace_tables(trace, 0.1)
        assert table_cache_size() == 1
        del trace
        import gc

        gc.collect()
        assert table_cache_size() == 0


class TestKernelOracleParity:
    """Each KERNEL_ORACLES entry exercised directly against its scalar.

    These are the function-level parity checks reprolint R004 demands:
    every vectorized kernel is driven side by side with the scalar
    reference it declares, with exact float equality.
    """

    def _trace(self, seed, duration=120.0):
        return RegimeSwitchingGenerator(
            _SPIKY, np.random.default_rng(seed)
        ).generate(duration)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_integrate_price_fast_bitwise_equal(self, seed):
        from repro.cloud.spot import integrate_price
        from repro.execution.kernels import integrate_price_fast

        trace = self._trace(seed)
        r = np.random.default_rng(seed + 1)
        for _ in range(50):
            t0, t1 = np.sort(r.uniform(0.0, trace.end_time, 2))
            assert integrate_price_fast(trace, t0, t1) == integrate_price(
                trace, t0, t1
            )
        assert integrate_price_fast(trace, 3.0, 3.0) == 0.0

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", [CONTINUOUS, HOURLY])
    @pytest.mark.parametrize("interrupted", [False, True])
    def test_billed_cost_fast_matches_billed_spot_cost(
        self, seed, policy, interrupted
    ):
        from repro.cloud.spot import billed_spot_cost
        from repro.execution.kernels import billed_cost_fast

        trace = self._trace(seed)
        r = np.random.default_rng(seed + 2)
        for _ in range(25):
            launch, end = np.sort(r.uniform(0.0, trace.end_time, 2))
            assert billed_cost_fast(
                trace, launch, end, interrupted, policy
            ) == billed_spot_cost(trace, launch, end, interrupted, policy)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_checkpoints_completed_arr_elementwise(self, seed):
        from repro.core.ckpt_math import checkpoints_completed
        from repro.execution.kernels import checkpoints_completed_arr

        r = np.random.default_rng(seed + 3)
        exec_time = r.uniform(1.0, 12.0, 200)
        interval = r.uniform(0.2, 1.0, 200) * exec_time
        productive = r.uniform(0.0, 1.0, 200) * exec_time
        # Exact multiples stress the at-the-finish-line decrement loop.
        productive[::7] = exec_time[::7]
        interval[::11] = exec_time[::11]
        got = checkpoints_completed_arr(productive, exec_time, interval)
        for i in range(200):
            want = checkpoints_completed(
                float(productive[i]), float(exec_time[i]), float(interval[i])
            )
            assert got[i] == float(want), i

    @pytest.mark.parametrize("seed", SEEDS)
    def test_total_wall_arr_elementwise(self, seed):
        from repro.core.ckpt_math import total_wall
        from repro.execution.kernels import total_wall_arr

        r = np.random.default_rng(seed + 4)
        exec_time = r.uniform(1.0, 12.0, 100)
        interval = r.uniform(0.2, 1.2, 100) * exec_time
        overhead = 0.35
        got = total_wall_arr(exec_time, interval, overhead)
        for i in range(100):
            assert got[i] == total_wall(
                float(exec_time[i]), float(interval[i]), overhead
            ), i

    @pytest.mark.parametrize("seed", SEEDS)
    def test_progress_after_wall_arr_elementwise(self, seed):
        from repro.core.ckpt_math import (
            checkpoints_completed,
            progress_after_wall,
            total_wall,
        )
        from repro.execution.kernels import progress_after_wall_arr

        r = np.random.default_rng(seed + 5)
        n = 150
        exec_time = r.uniform(1.0, 10.0, n)
        interval = r.uniform(0.2, 1.0, n) * exec_time
        overhead = 0.25
        done_wall = np.array(
            [total_wall(float(T), float(F), overhead)
             for T, F in zip(exec_time, interval)]
        )
        k_done = np.array(
            [checkpoints_completed(float(T), float(T), float(F))
             for T, F in zip(exec_time, interval)],
            dtype=np.int64,
        )
        wall = r.uniform(0.0, 1.3, n) * done_wall  # spans past completion
        productive, saved, n_ckpt = progress_after_wall_arr(
            wall, exec_time, interval, overhead, done_wall, k_done
        )
        for i in range(n):
            p, s, k = progress_after_wall(
                float(wall[i]), float(exec_time[i]), float(interval[i]),
                overhead,
            )
            assert (productive[i], saved[i], n_ckpt[i]) == (p, s, k), i

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_build_correlated_history_matches_scalar_rederivation(self, seed):
        """Rebuild every market from the scalar generator + a pure-python
        scalar overlay under the same derived seeds; demand bit-equality."""
        from repro.cloud.instance_types import PAPER_TYPES
        from repro.cloud.zones import DEFAULT_ZONES
        from repro.market.correlated import build_correlated_history, sample_surges
        from repro.market.presets import market_params
        from repro.sim.rng import derive_seed

        def scalar_overlay(trace, start, end, floor):
            lo, hi = max(start, trace.start_time), min(end, trace.end_time)
            if hi <= lo:
                return trace
            times = list(trace.times)
            prices = list(trace.prices)
            for cut in (lo, hi):
                if cut < trace.end_time and cut not in times:
                    idx = int(np.searchsorted(times, cut, side="right") - 1)
                    times.insert(idx + 1, cut)
                    prices.insert(idx + 1, prices[idx])
            new_p = [max(p, floor) if lo <= t < hi else p
                     for t, p in zip(times, prices)]
            keep = [0] + [k for k in range(1, len(times))
                          if new_p[k] != new_p[k - 1]]
            return SpotPriceTrace(
                [times[k] for k in keep], [new_p[k] for k in keep],
                trace.end_time,
            )

        duration, rho = 240.0, 0.6
        got = build_correlated_history(duration, seed=seed, correlation=rho)
        surges = sample_surges(
            duration, np.random.default_rng(derive_seed(seed, "region-surges"))
        )
        for tname in PAPER_TYPES:
            for zone in DEFAULT_ZONES:
                key = MarketKey(tname, zone.name)
                params = market_params(tname, zone.name)
                trace = RegimeSwitchingGenerator(
                    params,
                    np.random.default_rng(derive_seed(seed, f"corr-market:{key}")),
                ).generate(duration)
                join = np.random.default_rng(
                    derive_seed(seed, f"corr-join:{key}")
                )
                for surge in surges:
                    if join.random() < rho:
                        trace = scalar_overlay(
                            trace, surge.start, surge.end,
                            surge.severity * params.base_price,
                        )
                have = got.get(key)
                assert have.times.tobytes() == trace.times.tobytes(), key
                assert have.prices.tobytes() == trace.prices.tobytes(), key
                assert have.end_time == trace.end_time, key


class TestGridEvalParity:
    """The planner's one-shot grid kernels (repro.core.grid_eval) against
    their scalar oracles, exact float equality throughout."""

    @staticmethod
    def _model(seed, params=_SPIKY, sub=0):
        gen = RegimeSwitchingGenerator(
            params, np.random.default_rng(7000 * seed + sub)
        )
        return FailureModel(gen.generate(300.0), step_hours=1.0)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("levels", (1, 4, 9))
    def test_bid_matrix_rows_matches_log_bid_candidates(self, seed, levels):
        rng = np.random.default_rng(seed)
        maxima = rng.uniform(0.05, 2.0, size=7)
        floors = maxima * rng.uniform(0.05, 0.95, size=7)
        rows = bid_matrix_rows(maxima, levels, floors)
        assert len(rows) == maxima.size
        for hi, lo, row in zip(maxima, floors, rows):
            ref = log_bid_candidates(float(hi), levels, float(lo))
            assert row.shape == ref.shape
            assert row.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_outcome_grid_matches_from_pmf(self, seed):
        spec = make_group(exec_time=6.0, overhead=0.4, recovery=0.5)
        fm = self._model(seed)
        bid = float(
            log_bid_candidates(fm.max_price(), 4, fm.min_price())[2]
        )
        n = max(1, int(np.ceil(spec.exec_time / fm.step_hours)))
        pmf = fm.failure_pmf(bid, n)
        price = fm.expected_price(bid)
        young = young_interval(
            spec.checkpoint_overhead, fm.mttf_hours(bid), spec.exec_time
        )
        candidates = _interval_candidates(spec, young, fm.step_hours)
        productive, wall, ratios = outcome_grid(
            spec, candidates, pmf.size - 1, fm.step_hours
        )
        for c in range(candidates.size):
            o = GroupOutcome.from_pmf(
                spec, bid, float(candidates[c]), pmf, price, fm.step_hours
            )
            assert productive.tobytes() == o.productive.tobytes()
            assert wall[c].tobytes() == o.wall.tobytes()
            assert ratios[c].tobytes() == o.ratios.tobytes()

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("refine", (False, True))
    def test_optimal_interval_grid_bitwise_equal(self, seed, refine):
        od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
        for overhead, recovery in ((0.4, 0.5), (0.05, 0.1)):
            spec = make_group(
                exec_time=6.0, overhead=overhead, recovery=recovery
            )
            fm = self._model(seed, sub=int(overhead * 100))
            for bid in log_bid_candidates(fm.max_price(), 4, fm.min_price()):
                got = optimal_interval_grid(
                    spec, float(bid), fm, od, fm.step_hours, refine=refine
                )
                ref = optimal_interval(
                    spec, float(bid), fm, od, fm.step_hours, refine=refine
                )
                # Exact equality: same candidate wins via the same
                # sequential strict-inequality incumbent rule.
                assert got == ref

    @pytest.mark.parametrize("seed", SEEDS)
    def test_subset_bounds_matches_scalar_subset_bound(self, seed, tmp_path):
        from itertools import combinations

        from repro.config import DEFAULT_CONFIG
        from repro.core import grid_eval
        from repro.core.two_level import TwoLevelOptimizer

        clear_shared_caches()
        g1 = make_group(exec_time=6.0, overhead=0.4, recovery=0.5)
        g2 = dataclasses.replace(
            make_group(zone="us-east-1b", exec_time=6.0, overhead=0.3,
                       recovery=0.4),
        )
        g3 = make_group(key_type="c3.xlarge", exec_time=4.0, overhead=0.2,
                        recovery=0.3, n_instances=2)
        od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
        problem = Problem(
            groups=(g1, g2, g3), ondemand_options=(od,), deadline=40.0
        )
        models = {}
        for sub, spec in enumerate(problem.groups):
            gen = RegimeSwitchingGenerator(
                _SPIKY if sub % 2 == 0 else _CALMER,
                np.random.default_rng(9000 * seed + sub),
            )
            models[spec.key] = FailureModel(
                gen.generate(300.0), step_hours=1.0
            )
        config = DEFAULT_CONFIG.with_(artifact_dir=str(tmp_path))
        opt = TwoLevelOptimizer(problem, models, od, config)
        tables = [opt.group_table(i) for i in range(3)]
        min_spot = np.array([t.e_spot.min() for t in tables])
        min_ratio = np.array([t.e_ratio.min() for t in tables])
        min_wall = np.array([t.e_wall.min() for t in tables])
        for size in (1, 2, 3):
            subsets = list(combinations(range(3), size))
            cost_b, time_b = grid_eval.subset_bounds(
                min_spot, min_ratio, min_wall,
                np.array(subsets, dtype=np.intp), od.full_run_cost,
            )
            for row, subset in enumerate(subsets):
                chosen = [tables[i] for i in subset]
                assert float(cost_b[row]) == opt._subset_bound(chosen, "cost")
                assert float(time_b[row]) == opt._subset_bound(chosen, "time")
        clear_shared_caches()
