"""Workload model tests — analytic profiles."""

import pytest

from repro.apps import BT, BTIO, FT, IS, LU, SP, LAMMPS, PAPER_APPS, make_app
from repro.apps.base import WorkloadCategory
from repro.cloud.instance_types import get_instance_type
from repro.errors import ConfigurationError
from repro.mpi.timing import estimate_execution_hours


def T(app, type_name):
    return estimate_execution_hours(app.profile(), get_instance_type(type_name))


class TestFactory:
    def test_all_paper_apps_constructible(self):
        for name in PAPER_APPS:
            app = make_app(name)
            assert app.n_processes == 128
            assert app.profile().instr_giga > 0

    def test_unknown_app(self):
        with pytest.raises(ValueError):
            make_app("EP")  # embarrassingly parallel: not modelled

    def test_case_insensitive(self):
        assert make_app("bt").name == "BT"


class TestScaling:
    def test_repeats_scale_profile(self):
        one = BT(repeats=1).profile()
        many = BT(repeats=10).profile()
        assert many.instr_giga == pytest.approx(10 * one.instr_giga)
        assert many.memory_gb_per_process == one.memory_gb_per_process

    def test_problem_class_scales_work(self):
        a = BT(problem_class="A", repeats=1).profile()
        b = BT(problem_class="B", repeats=1).profile()
        c = BT(problem_class="C", repeats=1).profile()
        assert a.instr_giga < b.instr_giga < c.instr_giga

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            BT(problem_class="D")

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            BT(n_processes=0)
        with pytest.raises(ConfigurationError):
            BT(repeats=0)


class TestCategories:
    def test_paper_categories(self):
        assert BT().category is WorkloadCategory.COMPUTE
        assert SP().category is WorkloadCategory.COMPUTE
        assert LU().category is WorkloadCategory.COMPUTE
        assert FT().category is WorkloadCategory.COMMUNICATION
        assert IS().category is WorkloadCategory.COMMUNICATION
        assert BTIO().category is WorkloadCategory.IO


class TestPaperShapes:
    """The relative execution times that drive the paper's Section 5.3."""

    def test_compute_kernels_fastest_on_powerful_types(self):
        for cls in (BT, SP, LU):
            app = cls()
            fast = min(T(app, "c3.xlarge"), T(app, "cc2.8xlarge"))
            assert fast < T(app, "m1.medium") < T(app, "m1.small")

    def test_comm_kernels_dominated_by_cc2(self):
        for cls in (FT, IS):
            app = cls()
            t_cc2 = T(app, "cc2.8xlarge")
            for other in ("m1.small", "m1.medium", "c3.xlarge"):
                assert t_cc2 < T(app, other)

    def test_comm_kernels_are_comm_bound_on_small(self):
        ft = FT().profile()
        cpu_only = ft.instr_giga / (128 * 1.0) / 3600.0
        total = estimate_execution_hours(ft, get_instance_type("m1.small"))
        assert total > 1.5 * cpu_only  # network dominates

    def test_btio_punishes_cc2(self):
        app = BTIO()
        # m1.medium both faster and cheaper than cc2.8xlarge (Section 5.3.1)
        assert T(app, "m1.medium") < T(app, "cc2.8xlarge")

    def test_btio_io_dominates_on_cc2(self):
        bt, btio = BT(), BTIO()
        assert T(btio, "cc2.8xlarge") > 1.5 * T(bt, "cc2.8xlarge")
        # but barely matters on 128 small disks
        assert T(btio, "m1.small") < 1.25 * T(bt, "m1.small")


class TestLammps:
    def test_comm_fraction_grows_with_processes(self):
        """The paper's strong-scaling observation."""

        def comm_fraction(p):
            prof = LAMMPS(n_processes=p).profile()
            it = get_instance_type("m1.small")
            total = estimate_execution_hours(prof, it)
            cpu = prof.instr_giga / (p * it.core_speed) / 3600.0
            return 1.0 - cpu / total

        assert comm_fraction(128) > comm_fraction(32)

    def test_fixed_problem_size(self):
        p32 = LAMMPS(n_processes=32).profile()
        p128 = LAMMPS(n_processes=128).profile()
        assert p32.instr_giga == pytest.approx(p128.instr_giga)

    def test_more_processes_run_faster(self):
        assert T(LAMMPS(n_processes=128), "m1.small") < T(
            LAMMPS(n_processes=32), "m1.small"
        )

    def test_memory_per_process_shrinks(self):
        assert (
            LAMMPS(n_processes=128).profile().memory_gb_per_process
            < LAMMPS(n_processes=32).profile().memory_gb_per_process
        )

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            LAMMPS(steps=0)


class TestProfileStructure:
    def test_ft_uses_alltoall(self):
        colls = FT().profile().collectives
        assert "alltoall" in colls and colls["alltoall"].count > 0

    def test_bt_has_halo_p2p(self):
        p = BT().profile()
        assert p.p2p_bytes > 0 and p.p2p_messages > 0

    def test_btio_writes(self):
        assert BTIO().profile().io_seq_bytes > 0
        assert BT().profile().io_seq_bytes == 0

    def test_checkpoint_image_is_tens_of_gb(self):
        img = BT().profile().checkpoint_bytes
        assert 10e9 < img < 100e9
