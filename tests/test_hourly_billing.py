"""Hourly spot billing tests (2014 EC2 semantics)."""

import pytest

from repro.cloud.billing import CONTINUOUS, HOURLY, BillingPolicy
from repro.cloud.instance_types import get_instance_type
from repro.cloud.spot import billed_spot_cost
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.execution.replay import replay_decision
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


class TestBilledSpotCost:
    def test_continuous_equals_integral(self, step_trace):
        cost = billed_spot_cost(step_trace, 4.0, 9.0, False, CONTINUOUS)
        assert cost == pytest.approx(1.65)

    def test_hourly_locks_price_at_hour_start(self, step_trace):
        # launch at 4.0 on price 0.10; hour [4,5) billed at 0.10 even
        # though the price rises to 0.50 at 5.0; [5,6) billed at 0.50.
        cost = billed_spot_cost(step_trace, 4.0, 6.0, False, HOURLY)
        assert cost == pytest.approx(0.10 + 0.50)

    def test_partial_hour_rounded_up_when_user_stops(self, step_trace):
        cost = billed_spot_cost(step_trace, 0.0, 1.5, False, HOURLY)
        assert cost == pytest.approx(0.10 * 2)

    def test_partial_hour_free_when_interrupted(self, step_trace):
        cost = billed_spot_cost(step_trace, 0.0, 1.5, True, HOURLY)
        assert cost == pytest.approx(0.10)

    def test_interrupted_within_first_hour_is_free(self, step_trace):
        cost = billed_spot_cost(step_trace, 0.0, 0.4, True, HOURLY)
        assert cost == 0.0

    def test_no_refund_policy(self, step_trace):
        strict = BillingPolicy(granularity_hours=1.0, refund_interrupted_hour=False)
        cost = billed_spot_cost(step_trace, 0.0, 0.4, True, strict)
        assert cost == pytest.approx(0.10)

    def test_zero_duration(self, step_trace):
        assert billed_spot_cost(step_trace, 5.0, 5.0, False, HOURLY) == 0.0


class TestReplayWithHourlyBilling:
    def setup_problem(self):
        g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
        od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
        problem = Problem(groups=(g,), ondemand_options=(od,), deadline=30.0)
        h = SpotPriceHistory()
        h.add(g.key, SpotPriceTrace([0.0], [0.05], 400.0))
        return problem, h

    def test_hourly_rounds_up_completion(self):
        problem, h = self.setup_problem()
        d = Decision(groups=(GroupDecision(0, 0.1, 2.0),), ondemand_index=0)
        cont = replay_decision(problem, d, h, 0.0)
        hourly = replay_decision(problem, d, h, 0.0, billing=HOURLY)
        # wall 7.0h bills 7 whole hours either way here
        assert hourly.cost == pytest.approx(cont.cost)

    def test_hourly_refund_on_interruption(self):
        g = make_group(exec_time=6.0, overhead=0.5, recovery=0.5, n_instances=2)
        od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
        problem = Problem(groups=(g,), ondemand_options=(od,), deadline=30.0)
        h = SpotPriceHistory()
        # dies at 2.5h: continuous bills 2.5h, hourly refunds to 2h
        h.add(g.key, SpotPriceTrace([0.0, 2.5], [0.05, 0.9], 400.0))
        d = Decision(groups=(GroupDecision(0, 0.1, 6.0),), ondemand_index=0)
        cont = replay_decision(problem, d, h, 0.0)
        hourly = replay_decision(problem, d, h, 0.0, billing=HOURLY)
        spot_cont = cont.ledger.total("spot")
        spot_hourly = hourly.ledger.total("spot")
        assert spot_cont == pytest.approx(0.05 * 2.5 * 2)
        assert spot_hourly == pytest.approx(0.05 * 2.0 * 2)

    def test_hourly_never_cheaper_on_user_stopped_runs(self):
        problem, h = self.setup_problem()
        d = Decision(groups=(GroupDecision(0, 0.1, 3.3),), ondemand_index=0)
        cont = replay_decision(problem, d, h, 0.0)
        hourly = replay_decision(problem, d, h, 0.0, billing=HOURLY)
        assert hourly.cost >= cont.cost - 1e-9
