"""Determinism regression tests for the performance layer.

The caches, the pruned subset search, the batched replay and the
process-parallel Monte-Carlo are all claimed to be *bit-identical* to
the seed implementation paths.  These tests hold that claim down:

* cached vs cache-disabled planning → identical plans,
* pruned vs unpruned subset search → identical winner and counts,
* batched vs scalar replay → identical RunResults field by field,
* `jobs` > 1 vs serial Monte-Carlo → identical summaries,
* observability (tracing + audit) on vs off → identical RunResults.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.optimizer import SompiOptimizer, build_failure_models
from repro.core.subset import exhaustive_subset_search
from repro.core.two_level import TwoLevelOptimizer, clear_shared_caches
from repro.execution.batch_replay import replay_batch
from repro.execution.montecarlo import (
    evaluate_decision_mc,
    replay_many,
    sample_start_times,
)
from repro.execution.replay import replay_decision
from repro.experiments.env import ExperimentEnv


@pytest.fixture(scope="module")
def env():
    return ExperimentEnv.paper_default()


@pytest.fixture(scope="module")
def planned(env):
    problem = env.problem("BT", deadline_factor=1.5)
    plan = env.sompi_plan(problem)
    assert plan.decision.groups, "expected a spot-using plan"
    return problem, plan


class TestCachedPlanningIdentical:
    def test_cache_off_matches_cache_on(self, env):
        problem = env.problem("SP", deadline_factor=1.05)
        cached_cfg = env.config.with_(table_cache=True)
        uncached_cfg = env.config.with_(table_cache=False)
        clear_shared_caches()
        hot = SompiOptimizer(
            problem,
            build_failure_models(problem, env.training_history(), cache=True),
            cached_cfg,
        ).plan()
        cold = SompiOptimizer(
            problem,
            build_failure_models(problem, env.training_history(), cache=False),
            uncached_cfg,
        ).plan()
        assert hot.expectation == cold.expectation
        assert hot.decision == cold.decision
        assert hot.combos_evaluated == cold.combos_evaluated

    def test_second_plan_served_from_cache_is_identical(self, env):
        problem = env.problem("SP", deadline_factor=1.05)
        models = build_failure_models(problem, env.training_history())
        clear_shared_caches()
        first = SompiOptimizer(problem, models, env.config).plan()
        again = SompiOptimizer(problem, models, env.config).plan()
        assert first.expectation == again.expectation
        assert first.decision == again.decision


class TestPrunedSearchIdentical:
    def test_pruned_and_unpruned_traversals_agree(self, env):
        problem = env.problem("FT", deadline_factor=1.5)
        models = build_failure_models(problem, env.training_history())
        ondemand = problem.ondemand_options[0]
        clear_shared_caches()
        pruned_opt = TwoLevelOptimizer(problem, models, ondemand, env.config)
        pruned = exhaustive_subset_search(pruned_opt, kappa=2)
        # The same traversal with pruning defeated: never pass a bound.
        plain_opt = TwoLevelOptimizer(problem, models, ondemand, env.config)
        best = None
        from repro.core.subset import enumerate_subsets

        for subset in enumerate_subsets(problem.n_groups, 2):
            result = plain_opt.optimize_subset(subset)
            if result is None:
                continue
            if best is None or result.expectation.cost < best.expectation.cost:
                best = result
        assert pruned is not None and best is not None
        assert pruned.bids == best.bids
        assert pruned.expectation == best.expectation
        assert pruned_opt.combos_evaluated == plain_opt.combos_evaluated
        assert pruned_opt.subsets_pruned > 0  # the bound actually fired


class TestBatchedReplayIdentical:
    def test_batch_matches_scalar_field_by_field(self, env, planned):
        problem, plan = planned
        starts = sample_start_times(
            problem, plan.decision, env.history, 120,
            env.rng.fresh("det-batch"), t_min=env.train_end,
        )
        scalar = [
            replay_decision(problem, plan.decision, env.history, float(t))
            for t in starts
        ]
        batched = replay_batch(problem, plan.decision, env.history, starts)
        assert len(scalar) == len(batched)
        for a, b in zip(scalar, batched):
            assert a.start_time == b.start_time
            assert a.cost == b.cost
            assert a.makespan == b.makespan
            assert a.completed_by == b.completed_by
            assert a.ondemand_hours == b.ondemand_hours
            assert [
                (i.category, i.description, i.dollars) for i in a.ledger.items
            ] == [
                (i.category, i.description, i.dollars) for i in b.ledger.items
            ]
            for ra, rb in zip(a.group_records, b.group_records):
                assert ra == rb


class TestObservabilityTransparent:
    def test_observability_off_is_bit_identical(self, env, planned):
        """The repro.obs layer observes results on the way out; it must
        never perturb them.  Replays with tracing and audit fully on are
        compared field by field against plain replays (DESIGN.md §7)."""
        problem, plan = planned
        starts = sample_start_times(
            problem, plan.decision, env.history, 60,
            env.rng.fresh("det-obs"), t_min=env.train_end,
        )
        plain = [
            replay_decision(problem, plan.decision, env.history, float(t))
            for t in starts
        ]
        with obs.audited(), obs.tracing():
            observed = [
                replay_decision(problem, plan.decision, env.history, float(t))
                for t in starts
            ]
            observed_batch = replay_batch(
                problem, plan.decision, env.history, starts
            )
        for a, b, c in zip(plain, observed, observed_batch):
            for other in (b, c):
                assert a.start_time == other.start_time
                assert a.cost == other.cost
                assert a.makespan == other.makespan
                assert a.completed_by == other.completed_by
                assert a.ondemand_hours == other.ondemand_hours
                assert tuple(a.group_records) == tuple(other.group_records)
                assert [
                    (i.category, i.description, i.dollars)
                    for i in a.ledger.items
                ] == [
                    (i.category, i.description, i.dollars)
                    for i in other.ledger.items
                ]


class TestParallelMcIdentical:
    def test_jobs_matches_serial_summary(self, env, planned):
        problem, plan = planned
        serial = evaluate_decision_mc(
            problem, plan.decision, env.history, 40,
            env.rng.fresh("det-jobs"), t_min=env.train_end,
        )
        parallel = evaluate_decision_mc(
            problem, plan.decision, env.history, 40,
            env.rng.fresh("det-jobs"), t_min=env.train_end, jobs=2,
        )
        assert serial == parallel

    def test_jobs_matches_serial_runs_persistent(self, env, planned):
        problem, plan = planned
        kwargs = dict(t_min=env.train_end, semantics="persistent")
        serial = replay_many(
            problem, plan.decision, env.history, 16,
            env.rng.fresh("det-jobs-p"), **kwargs,
        )
        parallel = replay_many(
            problem, plan.decision, env.history, 16,
            env.rng.fresh("det-jobs-p"), jobs=3, **kwargs,
        )
        assert [(r.cost, r.makespan, r.completed_by) for r in serial] == [
            (r.cost, r.makespan, r.completed_by) for r in parallel
        ]
