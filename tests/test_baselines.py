"""Baseline strategy tests."""

import pytest

from repro.baselines import (
    INF_BID,
    ablation_plan,
    all_unable_config,
    marathe_decision,
    marathe_opt_decision,
    ondemand_decision,
    spot_avg_decision,
    spot_inf_decision,
    wo_ck_config,
    wo_rp_config,
)
from repro.experiments.env import LOOSE_DEADLINE_FACTOR, TIGHT_DEADLINE_FACTOR


@pytest.fixture(scope="module")
def bt_setup(paper_env):
    problem = paper_env.problem("BT", LOOSE_DEADLINE_FACTOR)
    models = paper_env.failure_models(problem)
    return paper_env, problem, models


class TestOnDemand:
    def test_no_groups(self, bt_setup):
        env, problem, _ = bt_setup
        d = ondemand_decision(problem)
        assert d.groups == ()

    def test_picks_cheapest_feasible(self, bt_setup):
        env, problem, _ = bt_setup
        d = ondemand_decision(problem)
        chosen = problem.ondemand_options[d.ondemand_index]
        for opt in problem.ondemand_options:
            if opt.exec_time <= problem.deadline:
                assert chosen.full_run_cost <= opt.full_run_cost + 1e-9


class TestSpotNaive:
    def test_spot_inf_uses_inf_bid_no_checkpoints(self, bt_setup):
        env, problem, models = bt_setup
        d = spot_inf_decision(problem, models)
        assert len(d.groups) == 1
        gd = d.groups[0]
        assert gd.bid == INF_BID
        spec = problem.groups[gd.group_index]
        assert gd.interval == spec.exec_time  # no checkpoints

    def test_spot_inf_never_fails_in_replay(self, bt_setup):
        env, problem, models = bt_setup
        d = spot_inf_decision(problem, models)
        mc = env.mc(problem, d, n_samples=100, stream="spotinf")
        assert mc.spot_completion_rate == 1.0

    def test_spot_avg_bids_historical_mean(self, bt_setup):
        env, problem, models = bt_setup
        d = spot_avg_decision(problem, models)
        gd = d.groups[0]
        spec = problem.groups[gd.group_index]
        assert gd.bid == pytest.approx(models[spec.key].trace.mean_price())

    def test_spot_strategies_pick_deadline_feasible_group(self, bt_setup):
        env, problem, models = bt_setup
        for d in (spot_inf_decision(problem, models), spot_avg_decision(problem, models)):
            spec = problem.groups[d.groups[0].group_index]
            assert spec.exec_time <= problem.deadline


class TestMarathe:
    def test_marathe_uses_cc2_in_all_zones(self, bt_setup):
        env, problem, models = bt_setup
        d = marathe_decision(problem, models)
        types = {problem.groups[g.group_index].itype.name for g in d.groups}
        assert types == {"cc2.8xlarge"}
        assert len(d.groups) == 3

    def test_marathe_bids_ondemand_price(self, bt_setup):
        env, problem, models = bt_setup
        d = marathe_decision(problem, models)
        for g in d.groups:
            assert g.bid == pytest.approx(2.000)

    def test_marathe_opt_picks_cheaper_type_loose(self, bt_setup):
        """Section 5.3.1: Marathe-Opt beats Marathe under loose deadlines."""
        env, problem, models = bt_setup
        opt = marathe_opt_decision(problem, models)
        base = marathe_decision(problem, models)
        cost_opt = env.expectation(problem, opt).cost
        cost_base = env.expectation(problem, base).cost
        assert cost_opt < cost_base

    def test_marathe_equals_opt_under_tight_deadline(self, paper_env):
        """Tight deadline forces both to cc2.8xlarge (paper observation)."""
        problem = paper_env.problem("BT", TIGHT_DEADLINE_FACTOR)
        models = paper_env.failure_models(problem)
        opt = marathe_opt_decision(problem, models)
        types = {problem.groups[g.group_index].itype.name for g in opt.groups}
        assert types == {"cc2.8xlarge"}

    def test_marathe_single_type_always(self, bt_setup):
        env, problem, models = bt_setup
        opt = marathe_opt_decision(problem, models)
        types = {problem.groups[g.group_index].itype.name for g in opt.groups}
        assert len(types) == 1


class TestAblations:
    def test_config_builders(self, paper_env):
        base = paper_env.config
        assert all_unable_config(base).kappa == 1
        assert not all_unable_config(base).checkpointing
        assert wo_rp_config(base).kappa == 1
        assert wo_rp_config(base).checkpointing
        assert not wo_ck_config(base).checkpointing
        assert wo_ck_config(base).kappa == base.kappa

    def test_all_unable_single_group_no_ckpt(self, bt_setup):
        env, problem, models = bt_setup
        plan = ablation_plan("all-unable", problem, models, env.config)
        assert len(plan.decision.groups) <= 1
        for gd in plan.decision.groups:
            spec = problem.groups[gd.group_index]
            assert gd.interval == pytest.approx(spec.exec_time)

    def test_sompi_at_least_as_cheap_as_every_ablation(self, bt_setup):
        """Bigger solution space can only help (Section 5.4.2)."""
        env, problem, models = bt_setup
        full = ablation_plan("sompi", problem, models, env.config)
        for variant in ("all-unable", "wo-rp", "wo-ck"):
            restricted = ablation_plan(variant, problem, models, env.config)
            assert full.expectation.cost <= restricted.expectation.cost + 1e-6

    def test_unknown_variant(self, bt_setup):
        env, problem, models = bt_setup
        with pytest.raises(ValueError):
            ablation_plan("wo-everything", problem, models, env.config)
