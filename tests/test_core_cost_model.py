"""Cost-model tests (Formulas 1-11).

The central check: the fast marginal-decomposition evaluator must agree
exactly with the naive joint enumeration the paper describes.
"""

import numpy as np
import pytest

from repro.cloud.instance_types import get_instance_type
from repro.core.cost_model import (
    Expectation,
    GroupOutcome,
    evaluate,
    evaluate_enumerated,
    expected_max,
    expected_min,
)
from repro.core.problem import OnDemandOption
from repro.errors import ConfigurationError
from tests.conftest import make_group


def outcome_from(spec, pmf, bid=0.05, interval=3.0, price=0.04, step=1.0):
    return GroupOutcome.from_pmf(spec, bid, interval, np.asarray(pmf, float), price, step)


@pytest.fixture
def ondemand():
    return OnDemandOption(get_instance_type("c3.xlarge"), 8, 6.0)


class TestGroupOutcome:
    def test_pmf_validation(self):
        spec = make_group(exec_time=4.0)
        with pytest.raises(ConfigurationError):
            outcome_from(spec, [0.5, 0.6])  # does not sum to 1
        with pytest.raises(ConfigurationError):
            outcome_from(spec, [1.0])  # too short

    def test_productive_and_wall_values(self):
        spec = make_group(exec_time=4.0, overhead=0.5)
        o = outcome_from(spec, [0.1, 0.1, 0.1, 0.1, 0.6], interval=2.0)
        assert np.allclose(o.productive, [0, 1, 2, 3, 4])
        # checkpoints at 2 only (the one at 4 == T is never taken)
        assert np.allclose(o.wall, [0, 1, 2.5, 3.5, 4.5])

    def test_completion_ratio_zero(self):
        spec = make_group(exec_time=4.0)
        o = outcome_from(spec, [0.25, 0.25, 0.25, 0.0, 0.25], interval=2.0)
        assert o.ratios[-1] == 0.0
        assert o.ratios[0] == 1.0

    def test_expected_spot_cost_hand_computed(self):
        spec = make_group(exec_time=2.0, overhead=0.0, n_instances=3)
        o = outcome_from(spec, [0.5, 0.0, 0.5], interval=2.0, price=0.1)
        # E[wall] = 0.5*0 + 0.5*2 = 1.0; cost = 0.1 * 3 * 1.0
        assert o.expected_spot_cost() == pytest.approx(0.3)

    def test_completion_probability(self):
        spec = make_group(exec_time=2.0)
        o = outcome_from(spec, [0.2, 0.3, 0.5])
        assert o.completion_probability == 0.5


class TestExtremes:
    def test_expected_min_single(self):
        v = np.array([0.0, 1.0, 2.0])
        p = np.array([0.2, 0.3, 0.5])
        assert expected_min([v], [p]) == pytest.approx(1.3)

    def test_expected_max_single(self):
        v = np.array([0.0, 1.0, 2.0])
        p = np.array([0.2, 0.3, 0.5])
        assert expected_max([v], [p]) == pytest.approx(1.3)

    def test_min_of_two_hand_computed(self):
        v1, p1 = np.array([1.0, 3.0]), np.array([0.5, 0.5])
        v2, p2 = np.array([2.0]), np.array([1.0])
        # min is 1 w.p. .5 and 2 w.p. .5
        assert expected_min([v1, v2], [p1, p2]) == pytest.approx(1.5)

    def test_max_of_two_hand_computed(self):
        v1, p1 = np.array([1.0, 3.0]), np.array([0.5, 0.5])
        v2, p2 = np.array([2.0]), np.array([1.0])
        assert expected_max([v1, v2], [p1, p2]) == pytest.approx(2.5)

    def test_min_le_max(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            vs, ps = [], []
            for _g in range(3):
                v = np.sort(rng.uniform(0, 5, size=4))
                p = rng.dirichlet(np.ones(4))
                vs.append(v)
                ps.append(p)
            assert expected_min(vs, ps) <= expected_max(vs, ps) + 1e-12


class TestEvaluateAgainstEnumeration:
    """evaluate() must equal the paper's literal joint sum."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_match(self, seed, ondemand):
        rng = np.random.default_rng(seed)
        outcomes = []
        for g in range(rng.integers(1, 4)):
            T = float(rng.integers(3, 7))
            spec = make_group(
                zone=f"us-east-1{'abc'[g]}",
                exec_time=T,
                overhead=float(rng.uniform(0, 0.5)),
                recovery=float(rng.uniform(0, 0.5)),
                n_instances=int(rng.integers(1, 8)),
            )
            n = int(np.ceil(T))
            pmf = rng.dirichlet(np.ones(n + 1))
            outcomes.append(
                outcome_from(
                    spec,
                    pmf,
                    interval=float(rng.uniform(0.5, T)),
                    price=float(rng.uniform(0.01, 0.2)),
                )
            )
        fast = evaluate(outcomes, ondemand)
        slow = evaluate_enumerated(outcomes, ondemand)
        assert fast.cost == pytest.approx(slow.cost, rel=1e-9)
        assert fast.time == pytest.approx(slow.time, rel=1e-9)
        assert fast.spot_cost == pytest.approx(slow.spot_cost, rel=1e-9)
        assert fast.ondemand_cost == pytest.approx(slow.ondemand_cost, rel=1e-9)
        assert fast.expected_min_ratio == pytest.approx(
            slow.expected_min_ratio, rel=1e-9
        )
        assert fast.expected_max_wall == pytest.approx(
            slow.expected_max_wall, rel=1e-9
        )

    def test_enumeration_guard(self, ondemand):
        spec = make_group(exec_time=10.0)
        o = outcome_from(spec, np.full(11, 1 / 11))
        with pytest.raises(ConfigurationError):
            evaluate_enumerated([o] * 8, ondemand, max_states=1000)

    def test_empty_outcomes_rejected(self, ondemand):
        with pytest.raises(ConfigurationError):
            evaluate([], ondemand)


class TestSemantics:
    def test_certain_completion_means_no_ondemand_cost(self, ondemand):
        spec = make_group(exec_time=4.0)
        pmf = [0, 0, 0, 0, 1.0]
        o = outcome_from(spec, pmf)
        exp = evaluate([o], ondemand)
        assert exp.ondemand_cost == 0.0
        assert exp.completion_probability == 1.0
        assert exp.time == pytest.approx(o.wall[-1])

    def test_certain_instant_failure_means_full_rerun(self, ondemand):
        spec = make_group(exec_time=4.0)
        pmf = [1.0, 0, 0, 0, 0]
        o = outcome_from(spec, pmf)
        exp = evaluate([o], ondemand)
        assert exp.expected_min_ratio == 1.0
        assert exp.ondemand_cost == pytest.approx(ondemand.full_run_cost)
        assert exp.completion_probability == 0.0

    def test_replication_raises_completion_probability(self, ondemand):
        spec_a = make_group(zone="us-east-1a", exec_time=4.0)
        spec_b = make_group(zone="us-east-1b", exec_time=4.0)
        pmf = [0.3, 0.1, 0.1, 0.0, 0.5]
        oa = outcome_from(spec_a, pmf)
        ob = outcome_from(spec_b, pmf)
        single = evaluate([oa], ondemand)
        double = evaluate([oa, ob], ondemand)
        assert double.completion_probability > single.completion_probability
        assert double.expected_min_ratio < single.expected_min_ratio

    def test_replication_costs_more_spot_but_less_ondemand(self, ondemand):
        spec_a = make_group(zone="us-east-1a", exec_time=4.0)
        spec_b = make_group(zone="us-east-1b", exec_time=4.0)
        pmf = [0.3, 0.1, 0.1, 0.0, 0.5]
        oa, ob = outcome_from(spec_a, pmf), outcome_from(spec_b, pmf)
        single = evaluate([oa], ondemand)
        double = evaluate([oa, ob], ondemand)
        assert double.spot_cost > single.spot_cost
        assert double.ondemand_cost < single.ondemand_cost

    def test_meets_deadline(self):
        exp = Expectation(1, 5.0, 1, 0, 0, 5, 1)
        assert exp.meets_deadline(5.0)
        assert not exp.meets_deadline(4.9)
