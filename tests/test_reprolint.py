"""Tests for the reprolint static-analysis framework (DESIGN.md §9).

Each rule gets fixture snippets exercising a positive (fires), a
negative (stays quiet) and a suppression case; the framework itself is
covered through baseline round-trips, the CLI, and a meta-test that the
linter runs clean over the real ``src/`` tree modulo the checked-in
baseline.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Severity,
    get_rules,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(
    tmp_path,
    source,
    relpath="src/repro/core/mod.py",
    select=None,
    extra_files=None,
    baseline=None,
):
    """Write ``source`` at ``relpath`` under a tmp project and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    for rel, text in (extra_files or {}).items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text))
    return run_lint(
        [target],
        root=tmp_path,
        rules=get_rules(select),
        baseline=baseline,
    )


def rule_ids(result):
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------------
# R001 — no unseeded randomness
# ----------------------------------------------------------------------
class TestR001Randomness:
    def test_flags_stdlib_random_import(self, tmp_path):
        result = lint_snippet(tmp_path, "import random\n", select=["R001"])
        assert rule_ids(result) == ["R001"]

    def test_flags_np_random_global(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def jitter(x):
                return x + np.random.normal()
            """,
            select=["R001"],
        )
        assert rule_ids(result) == ["R001"]

    def test_flags_wall_clock(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
            select=["R001"],
        )
        assert rule_ids(result) == ["R001"]

    def test_allows_seeded_generator_plumbing(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def draw(seed: int, rng: np.random.Generator = None):
                rng = rng or np.random.default_rng(np.random.SeedSequence(seed))
                return rng.uniform()
            """,
            select=["R001"],
        )
        assert result.findings == []

    def test_scoped_to_deterministic_packages(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import random\n",
            relpath="src/repro/obs/mod.py",
            select=["R001"],
        )
        assert result.findings == []

    def test_experiments_in_scope(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import random\n",
            relpath="src/repro/experiments/mod.py",
            select=["R001"],
        )
        assert [f.rule for f in result.findings] == ["R001"]

    def test_benchmarks_in_scope(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import random\n",
            relpath="benchmarks/perf/mod.py",
            select=["R001"],
        )
        assert [f.rule for f in result.findings] == ["R001"]

    def test_inline_suppression(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "import random  # reprolint: disable=R001 -- fixture\n",
            select=["R001"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R002 — registered caches
# ----------------------------------------------------------------------
class TestR002Caches:
    def test_flags_unregistered_module_cache(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "_SCORE_CACHE: dict = {}\n",
            select=["R002"],
        )
        assert rule_ids(result) == ["R002"]

    def test_registered_cache_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            from repro.core.two_level import register_cache_clearer

            _SCORE_CACHE: dict = {}

            def clear_score_cache():
                _SCORE_CACHE.clear()

            register_cache_clearer(clear_score_cache)
            """,
            select=["R002"],
        )
        assert result.findings == []

    def test_registry_owner_module_is_exempt(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            _EVAL_CACHE: dict = {}

            def clear_shared_caches():
                _EVAL_CACHE.clear()
            """,
            select=["R002"],
        )
        assert result.findings == []

    def test_flags_unregistered_lru_cache(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            from functools import lru_cache

            @lru_cache(maxsize=None)
            def expensive(x):
                return x * x
            """,
            select=["R002"],
        )
        assert rule_ids(result) == ["R002"]

    def test_registered_lru_cache_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            from functools import lru_cache

            from repro.core.two_level import register_cache_clearer

            @lru_cache(maxsize=None)
            def expensive(x):
                return x * x

            register_cache_clearer(expensive.cache_clear)
            """,
            select=["R002"],
        )
        assert result.findings == []

    def test_plain_constant_dict_not_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "LABELS = {'a': 1}\n",
            select=["R002"],
        )
        assert result.findings == []

    def test_flags_unregistered_pool_singleton(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "_SHARED_POOL = None\n",
            select=["R002"],
        )
        assert rule_ids(result) == ["R002"]

    def test_flags_unregistered_executor_factory(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            from concurrent.futures import ProcessPoolExecutor

            _EXECUTOR = ProcessPoolExecutor(max_workers=2)
            """,
            select=["R002"],
        )
        assert rule_ids(result) == ["R002"]

    def test_pool_singleton_with_registered_closer_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            from repro.core.two_level import register_cache_clearer

            _SHARED_POOL = None

            def close_shared_pool():
                global _SHARED_POOL
                pool, _SHARED_POOL = _SHARED_POOL, None
                if pool is not None:
                    pool.close()

            register_cache_clearer(close_shared_pool)
            """,
            select=["R002"],
        )
        assert result.findings == []

    def test_pool_size_constants_not_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "_POOL_MAX = 8\n_POOL_PID = -1\n",
            select=["R002"],
        )
        assert result.findings == []

    def test_real_pool_module_is_covered_and_clean(self):
        """The shipped pool.py singletons are (a) in R002's sights and
        (b) wired through registered clearers — delete the registration
        and the rule must fire."""
        pool_py = REPO_ROOT / "src" / "repro" / "execution" / "pool.py"
        source = pool_py.read_text()
        assert "register_cache_clearer(close_shared_pool)" in source
        result = run_lint(
            [pool_py], root=REPO_ROOT, rules=get_rules(["R002"])
        )
        assert result.findings == []
        broken = source.replace(
            "register_cache_clearer(close_shared_pool)", "", 1
        )
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            target = Path(tmp) / "src" / "repro" / "execution" / "pool.py"
            target.parent.mkdir(parents=True)
            target.write_text(broken)
            result = run_lint(
                [target], root=Path(tmp), rules=get_rules(["R002"])
            )
        assert "R002" in rule_ids(result)


# ----------------------------------------------------------------------
# R003 — units discipline
# ----------------------------------------------------------------------
class TestR003Units:
    def test_flags_dollars_plus_hours(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def total(cost_usd, wall_hours):
                return cost_usd + wall_hours
            """,
            select=["R003"],
        )
        assert rule_ids(result) == ["R003"]

    def test_flags_seconds_vs_hours_comparison(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def late(elapsed_s, deadline_hours):
                return elapsed_s > deadline_hours
            """,
            select=["R003"],
        )
        assert rule_ids(result) == ["R003"]

    def test_flags_return_drift_against_suffix(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def window_hours(total_cost):
                return total_cost
            """,
            select=["R003"],
        )
        assert rule_ids(result) == ["R003"]

    def test_rates_and_products_not_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def bill(price_per_hour, wall_hours, cost_a, cost_b):
                subtotal = price_per_hour * wall_hours
                return subtotal + cost_a + cost_b
            """,
            select=["R003"],
        )
        assert result.findings == []

    def test_same_dimension_arithmetic_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def extend(deadline_hours, slack_hours, spot_cost, od_cost):
                assert spot_cost <= od_cost
                return deadline_hours + slack_hours
            """,
            select=["R003"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R004 — kernel/oracle pairing
# ----------------------------------------------------------------------
PARITY_STUB = """
def test_fast_sum_matches_scalar():
    from repro.execution.kernels import fast_sum
"""


class TestR004KernelOracles:
    KERNEL_PATH = "src/repro/execution/kernels.py"

    def test_missing_kernel_oracles_dict(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def fast_sum(xs):\n    return sum(xs)\n",
            relpath=self.KERNEL_PATH,
            select=["R004"],
            extra_files={"tests/test_batch_parity.py": PARITY_STUB},
        )
        assert rule_ids(result) == ["R004"]
        assert "KERNEL_ORACLES" in result.findings[0].message

    def test_unmapped_public_function_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            KERNEL_ORACLES = {"fast_sum": "repro.core.math.slow_sum"}

            def fast_sum(xs):
                return sum(xs)

            def fast_prod(xs):
                return 1
            """,
            relpath=self.KERNEL_PATH,
            select=["R004"],
            extra_files={"tests/test_batch_parity.py": PARITY_STUB},
        )
        assert rule_ids(result) == ["R004"]
        assert "fast_prod" in result.findings[0].message

    def test_missing_parity_test_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            KERNEL_ORACLES = {"fast_other": "repro.core.math.slow_other"}

            def fast_other(xs):
                return xs
            """,
            relpath=self.KERNEL_PATH,
            select=["R004"],
            extra_files={"tests/test_batch_parity.py": PARITY_STUB},
        )
        assert rule_ids(result) == ["R004"]
        assert "parity test" in result.findings[0].message

    def test_stale_oracle_entry_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            KERNEL_ORACLES = {"fast_sum": "repro.core.math.slow_sum",
                              "gone": "repro.core.math.slow_gone"}

            def fast_sum(xs):
                return sum(xs)
            """,
            relpath=self.KERNEL_PATH,
            select=["R004"],
            extra_files={"tests/test_batch_parity.py": PARITY_STUB},
        )
        assert rule_ids(result) == ["R004"]
        assert "gone" in result.findings[0].message

    def test_paired_kernel_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            KERNEL_ORACLES = {"fast_sum": "repro.core.math.slow_sum"}

            def fast_sum(xs):
                return sum(xs)

            def _helper(xs):
                return xs
            """,
            relpath=self.KERNEL_PATH,
            select=["R004"],
            extra_files={"tests/test_batch_parity.py": PARITY_STUB},
        )
        assert result.findings == []

    def test_non_kernel_module_ignored(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def anything(xs):\n    return xs\n",
            relpath="src/repro/execution/replay.py",
            select=["R004"],
        )
        assert result.findings == []

    def test_suppressed_cache_helper(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            KERNEL_ORACLES = {"fast_sum": "repro.core.math.slow_sum"}

            def fast_sum(xs):
                return sum(xs)

            # reprolint: disable=R004 -- cache plumbing
            def cache_size():
                return 0
            """,
            relpath=self.KERNEL_PATH,
            select=["R004"],
            extra_files={"tests/test_batch_parity.py": PARITY_STUB},
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R005 — float equality
# ----------------------------------------------------------------------
class TestR005FloatEquality:
    def test_flags_float_literal_equality(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def f(x):\n    return x == 1.5\n",
            select=["R005"],
        )
        assert rule_ids(result) == ["R005"]

    def test_flags_dollar_total_equality(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def f(total_cost, ledger_cost):\n"
            "    return total_cost == ledger_cost\n",
            select=["R005"],
        )
        assert rule_ids(result) == ["R005"]

    def test_int_equality_not_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def f(n):\n    return n == 0\n",
            select=["R005"],
        )
        assert result.findings == []

    def test_tolerant_comparison_not_flagged(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import math

            def f(a_cost, b_cost):
                return math.isclose(a_cost, b_cost) or a_cost <= 0.0
            """,
            select=["R005"],
        )
        assert result.findings == []

    def test_suppression_with_reason(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def f(g):\n"
            "    return g == 0.0  # reprolint: disable=R005 -- sentinel\n",
            select=["R005"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# R006 — exception policy
# ----------------------------------------------------------------------
class TestR006Exceptions:
    def test_flags_bare_except(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except:
                    return 0
            """,
            select=["R006"],
        )
        assert rule_ids(result) == ["R006"]

    def test_flags_swallowed_exception(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except Exception:
                    pass
            """,
            select=["R006"],
        )
        assert rule_ids(result) == ["R006"]

    def test_reraising_handler_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except Exception as exc:
                    raise ValueError("wrapped") from exc
            """,
            select=["R006"],
        )
        assert result.findings == []

    def test_specific_handler_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except (KeyError, OSError):
                    return 0
            """,
            select=["R006"],
        )
        assert result.findings == []

    def test_flags_generic_raise(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "def f():\n    raise RuntimeError('boom')\n",
            select=["R006"],
        )
        assert rule_ids(result) == ["R006"]

    def test_library_error_raise_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            from repro.errors import ConfigurationError

            def f():
                raise ConfigurationError("bad knob")
            """,
            select=["R006"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# Framework: suppressions, baseline, severities, CLI
# ----------------------------------------------------------------------
class TestFramework:
    def test_standalone_comment_suppression_covers_next_line(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            # reprolint: disable=R001 -- fixture needs it
            import random
            """,
            select=["R001"],
        )
        assert result.findings == []

    def test_skip_file_marker(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "# reprolint: skip-file\nimport random\n",
            select=["R001"],
        )
        assert result.findings == []

    def test_syntax_error_becomes_finding(self, tmp_path):
        result = lint_snippet(tmp_path, "def broken(:\n", select=["R001"])
        assert [f.rule for f in result.findings] == ["R000"]
        assert result.exit_code() == 1

    def test_findings_are_errors_by_default(self, tmp_path):
        result = lint_snippet(tmp_path, "import random\n", select=["R001"])
        assert result.findings[0].severity is Severity.ERROR
        assert result.exit_code() == 1

    def test_baseline_round_trip(self, tmp_path):
        result = lint_snippet(tmp_path, "import random\n", select=["R001"])
        assert len(result.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        Baseline.dump(result.findings, baseline_path, reason="grandfathered")
        reloaded = Baseline.load(baseline_path)
        again = lint_snippet(
            tmp_path, "import random\n", select=["R001"], baseline=reloaded
        )
        assert again.findings == []
        assert len(again.baselined) == 1
        assert again.stale_baseline == []
        assert again.exit_code() == 0

    def test_baseline_survives_line_shift_but_not_code_change(self, tmp_path):
        result = lint_snippet(tmp_path, "import random\n", select=["R001"])
        baseline_path = tmp_path / "baseline.json"
        Baseline.dump(result.findings, baseline_path, reason="grandfathered")
        shifted = lint_snippet(
            tmp_path,
            "X = 1\n\nimport random\n",
            select=["R001"],
            baseline=Baseline.load(baseline_path),
        )
        assert shifted.findings == []
        changed = lint_snippet(
            tmp_path,
            "import random as rnd\n",
            select=["R001"],
            baseline=Baseline.load(baseline_path),
        )
        assert rule_ids(changed) == ["R001"]
        assert len(changed.stale_baseline) == 1

    def test_baseline_requires_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "R001", "path": "x.py",
                         "code": "import random", "reason": "  "}],
        }))
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Baseline.load(path)

    def test_baseline_multiset_semantics(self, tmp_path):
        source = "import random\nimport random\n"
        result = lint_snippet(tmp_path, source, select=["R001"])
        assert len(result.findings) == 2
        baseline = Baseline(
            [BaselineEntry("R001", result.findings[0].path,
                           "import random", "one of two")]
        )
        partial = lint_snippet(
            tmp_path, source, select=["R001"], baseline=baseline
        )
        assert len(partial.findings) == 1
        assert len(partial.baselined) == 1

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(KeyError):
            get_rules(["R999"])

    def test_every_rule_registered_with_description(self):
        rules = get_rules()
        assert [r.id for r in rules] == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010", "R011", "R012", "R013",
            "R014", "R015", "R016",
        ]
        for rule in rules:
            assert rule.title and rule.description


class TestCli:
    def run_cli(self, *args, cwd):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=cwd, env=env,
        )

    def test_violation_fails_and_json_reports_it(self, tmp_path):
        target = tmp_path / "src/repro/core/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import random\n")
        proc = self.run_cli("src", "--format", "json", cwd=tmp_path)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["summary"]["errors"] == 1
        assert payload["findings"][0]["rule"] == "R001"

    def test_clean_tree_exits_zero(self, tmp_path):
        target = tmp_path / "src/repro/core/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("X = 1\n")
        proc = self.run_cli("src", cwd=tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_list_rules(self, tmp_path):
        proc = self.run_cli("--list-rules", cwd=tmp_path)
        assert proc.returncode == 0
        for rid in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert rid in proc.stdout


# ----------------------------------------------------------------------
# Meta: the linter runs clean over the real tree modulo the baseline
# ----------------------------------------------------------------------
class TestMetaSelfLint:
    def test_src_is_clean_modulo_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "reprolint_baseline.json")
        result = run_lint(
            [REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline
        )
        assert result.findings == [], [f.format() for f in result.findings]
        assert result.stale_baseline == [], [
            e.to_json() for e in result.stale_baseline
        ]

    def test_baseline_contains_only_documented_r005(self):
        """ISSUE acceptance: the baseline only grandfathers documented
        exact float comparisons, nothing else."""
        baseline = Baseline.load(REPO_ROOT / "reprolint_baseline.json")
        for entry in baseline.entries:
            assert entry.rule == "R005"
            assert len(entry.reason.split()) >= 5

    def test_fixture_violation_is_caught_against_real_tree(self, tmp_path):
        """End-to-end: introducing a violation into a copy of a real
        module makes the lint non-zero (guards against dead rules)."""
        bad = tmp_path / "src/repro/core/evil.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random\n\n"
            "def f(total_cost, wall_hours):\n"
            "    return total_cost + wall_hours\n"
        )
        result = run_lint([bad], root=tmp_path, rules=get_rules())
        assert {f.rule for f in result.findings} == {"R001", "R003"}
