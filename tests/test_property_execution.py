"""Property-based tests on the execution layer (hypothesis).

These fuzz the replay machinery with generated traces and decisions and
check the invariants that must hold regardless of market shape:
costs are non-negative, progress is bounded by the work, persistent
replays never cost more than single-shot ones on the same trace, and
hourly billing with refunds brackets the continuous integral sensibly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.billing import CONTINUOUS, HOURLY, BillingPolicy
from repro.cloud.instance_types import get_instance_type
from repro.cloud.spot import billed_spot_cost
from repro.core.problem import Decision, GroupDecision, OnDemandOption, Problem
from repro.execution.replay import replay_decision
from repro.market.history import SpotPriceHistory
from repro.market.trace import SpotPriceTrace
from tests.conftest import make_group


@st.composite
def market_traces(draw):
    """Piecewise traces alternating between a cheap band and spikes."""
    n = draw(st.integers(2, 16))
    gaps = draw(
        st.lists(st.floats(min_value=0.5, max_value=12.0), min_size=n, max_size=n)
    )
    times = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    cheap = draw(st.floats(min_value=0.01, max_value=0.08))
    spikes = draw(
        st.lists(st.booleans(), min_size=n, max_size=n)
    )
    prices = [0.9 if s else cheap for s in spikes]
    prices[0] = cheap  # always launchable at t=0
    end = float(times[-1]) + 200.0  # long tail so replays finish
    return SpotPriceTrace(times, prices, end)


@st.composite
def decisions(draw):
    bid = draw(st.floats(min_value=0.05, max_value=0.5))
    interval = draw(st.floats(min_value=0.5, max_value=8.0))
    return bid, interval


def build(trace, bid, interval):
    g = make_group(exec_time=6.0, overhead=0.4, recovery=0.4, n_instances=2)
    od = OnDemandOption(get_instance_type("c3.xlarge"), 8, 5.0)
    problem = Problem(groups=(g,), ondemand_options=(od,), deadline=50.0)
    h = SpotPriceHistory()
    h.add(g.key, trace)
    d = Decision(groups=(GroupDecision(0, bid, interval),), ondemand_index=0)
    return problem, h, d


@settings(max_examples=60, deadline=None)
@given(market_traces(), decisions())
def test_replay_invariants(trace, bd):
    bid, interval = bd
    problem, h, d = build(trace, bid, interval)
    result = replay_decision(problem, d, h, 0.0)
    assert result.cost >= 0.0
    assert result.makespan >= 0.0
    assert result.completed  # hybrid always finishes (on-demand backstop)
    rec = result.group_records[0]
    assert 0.0 <= rec.saved <= rec.productive + 1e-9
    assert rec.productive <= 6.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(market_traces(), decisions())
def test_persistent_preserves_progress(trace, bd):
    # NOTE: persistent is NOT always cheaper in dollars — extra attempts
    # that die before reaching a new checkpoint still get billed (a
    # hypothesis run found exactly that counter-example).  What *is*
    # invariant: progress only accumulates, so the on-demand recovery
    # tail can never grow.
    bid, interval = bd
    problem, h, d = build(trace, bid, interval)
    single = replay_decision(problem, d, h, 0.0, semantics="single-shot")
    persistent = replay_decision(problem, d, h, 0.0, semantics="persistent")
    assert persistent.ondemand_hours <= single.ondemand_hours + 1e-9
    assert (
        persistent.group_records[0].saved
        >= single.group_records[0].saved - 1e-9
    )
    rec = persistent.group_records[0]
    assert rec.saved <= 6.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    market_traces(),
    st.floats(min_value=0.0, max_value=20.0),
    st.floats(min_value=0.0, max_value=30.0),
    st.booleans(),
)
def test_billed_cost_properties(trace, start, duration, interrupted):
    launch = min(start, trace.end_time - 1.0)
    end = min(launch + duration, trace.end_time - 0.5)
    if end <= launch:
        return
    continuous = billed_spot_cost(trace, launch, end, interrupted, CONTINUOUS)
    hourly = billed_spot_cost(trace, launch, end, interrupted, HOURLY)
    strict = billed_spot_cost(
        trace,
        launch,
        end,
        interrupted,
        BillingPolicy(granularity_hours=1.0, refund_interrupted_hour=False),
    )
    assert continuous >= 0.0 and hourly >= 0.0
    # refund can only help
    assert hourly <= strict + 1e-9
    # hourly bills at most one extra (locked-price) hour beyond max price
    assert hourly <= strict
    assert strict <= continuous + trace.max_price() * 1.0 + (end - launch) * trace.max_price()
